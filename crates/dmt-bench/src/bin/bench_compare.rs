//! CI throughput-regression gate: compare a fresh `bench_throughput` run
//! against a committed `BENCH_<n>.json` baseline and fail (exit code 1) when
//! a tracked model regresses beyond the tolerance band.
//!
//! Two metrics are gated per (model, stream) cell: the test-then-train
//! `instances_per_sec` and — when both files carry it — the predict-only
//! `predict_instances_per_sec`, so serving-path regressions cannot hide
//! behind learn-path wins (baselines blessed before the predict-only row
//! existed are compared on the train metric alone).
//!
//! Raw instances/sec depends on the machine, so the comparison is also
//! normalised by a *control* model: for every stream and metric, the ratio
//! `current/baseline` of the model under test is divided by the same ratio of
//! the control (`VFDT (MC)`, whose code path the perf-sensitive PRs do not
//! touch), cancelling a uniformly slower CI runner. A cell fails only when
//! *both* the raw and the control-normalised ratios fall below the tolerance
//! band — a true regression shows up in both views, while control-row jitter
//! or machine-speed changes alone show up in exactly one. Pass `--control ""`
//! to gate on the raw ratio only (e.g. for two runs on the same machine).
//!
//! File loading, row matching and the ratio-tolerance math are shared with
//! the accuracy gate (`acc_compare`) via [`dmt_bench::compare`]; this binary
//! keeps only the throughput-specific policy (control normalisation and the
//! parallel-row downgrade below).
//!
//! # Parallel rows vs the baseline machine's core count
//!
//! A parallel row (e.g. `DMT (2T)`) is only a meaningful baseline when the
//! blessing machine could actually run its workers concurrently: blessed on
//! a single core, the row records per-batch dispatch overhead, not parallel
//! throughput, and gating real multi-core runs against it is noise in both
//! directions. `bench_throughput` therefore records the blessing machine's
//! `available_parallelism` in the JSON `config`, and any row whose pinned
//! worker count (the per-row `parallelism` field, falling back to the
//! `"… (nT)"` display-name convention; baselines without either count as
//! serial) **exceeds the baseline's recorded cores** is downgraded: a
//! regression on it prints `WARN` and does not fail the gate. Baselines
//! without a recorded core count are conservatively treated as single-core.
//!
//! ```bash
//! cargo run --release -p dmt-bench --bin bench_compare -- \
//!     --baseline BENCH_5.json --current /tmp/bench.json \
//!     --tolerance 0.15 --models "DMT (ours),DMT (2T)"
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use dmt_bench::compare::{load_rows, matched_rows, BenchRows, Row, Tolerance};

struct Options {
    baseline: String,
    current: String,
    /// Maximum tolerated relative regression (0.15 = fail below 85 % of the
    /// baseline throughput).
    tolerance: f64,
    /// Control model used to cancel machine speed; empty = raw comparison.
    control: String,
    /// Models the gate applies to (comma-separated display names).
    models: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            baseline: "BENCH_5.json".to_string(),
            current: "/tmp/bench_current.json".to_string(),
            tolerance: 0.15,
            control: "VFDT (MC)".to_string(),
            models: vec!["DMT (ours)".to_string(), "DMT (2T)".to_string()],
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--baseline" => {
                if let Some(v) = value {
                    options.baseline = v.clone();
                    i += 1;
                }
            }
            "--current" => {
                if let Some(v) = value {
                    options.current = v.clone();
                    i += 1;
                }
            }
            "--tolerance" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.tolerance = v;
                    i += 1;
                }
            }
            "--control" => {
                if let Some(v) = value {
                    options.control = v.clone();
                    i += 1;
                }
            }
            "--models" => {
                if let Some(v) = value {
                    options.models = v.split(',').map(|s| s.trim().to_string()).collect();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

/// Pinned worker count encoded in a row's display name by the
/// `"… (nT)"` convention (`"DMT (2T)"` → 2); `None` for serial rows.
fn name_parallelism(model: &str) -> Option<usize> {
    let open = model.rfind('(')?;
    let inner = model[open + 1..].strip_suffix(")")?;
    inner.strip_suffix('T')?.parse().ok()
}

/// Worker count pinned for a row (1 = serial): the per-row `parallelism`
/// field when present, else the `"… (nT)"` display-name convention, else 1.
fn cell_parallelism(model: &str, row: &Row) -> usize {
    row.get("parallelism")
        .map(|v| *v as usize)
        .or_else(|| name_parallelism(model))
        .unwrap_or(1)
        .max(1)
}

/// Core count of the machine a bench file was produced on; files from before
/// the field existed are conservatively treated as single-core.
fn available_parallelism(file: &BenchRows) -> usize {
    file.config
        .get("available_parallelism")
        .map(|v| *v as usize)
        .unwrap_or(1)
        .max(1)
}

/// The per-cell metrics the gate iterates over: display label → JSON field.
const METRICS: [(&str, &str); 2] = [
    ("train", "instances_per_sec"),
    ("predict", "predict_instances_per_sec"),
];

fn run(options: &Options) -> Result<bool, String> {
    let baseline = load_rows(&options.baseline, "model", "stream")?;
    let current = load_rows(&options.current, "model", "stream")?;
    let tolerance = Tolerance::Ratio(options.tolerance);
    let baseline_cores = available_parallelism(&baseline);

    // Per-(stream, metric) machine-speed factor from the control model.
    let mut control_ratio: BTreeMap<(String, &str), f64> = BTreeMap::new();
    if !options.control.is_empty() {
        for ((model, stream), base) in &baseline.rows {
            if model == &options.control {
                if let Some(cur) = current.rows.get(&(model.clone(), stream.clone())) {
                    for (metric, field) in METRICS {
                        if let (Some(b), Some(c)) = (base.get(field), cur.get(field)) {
                            if *b > 0.0 {
                                control_ratio.insert((stream.clone(), metric), c / b);
                            }
                        }
                    }
                }
            }
        }
    }

    println!(
        "{:<14}{:<10}{:<9}{:>14}{:>14}{:>10}{:>12}  status",
        "Model", "Stream", "Metric", "base i/s", "cur i/s", "ratio", "normalised"
    );
    let mut failed = false;
    let mut compared = 0usize;
    for (model, stream, base, cur) in matched_rows(&baseline, &current, &options.models)? {
        // A parallel row the baseline machine could not actually run
        // concurrently is advisory only: its blessed numbers measure
        // dispatch overhead, not parallel throughput (see the module docs).
        let advisory = cell_parallelism(model, base) > baseline_cores;
        for (metric, field) in METRICS {
            // A metric is gated only when both files carry it, so old
            // baselines without the predict-only row keep working.
            let (Some(&base_ips), Some(&cur_ips)) = (base.get(field), cur.get(field)) else {
                continue;
            };
            if base_ips <= 0.0 {
                continue;
            }
            let raw_ratio = cur_ips / base_ips;
            let machine = control_ratio
                .get(&(stream.to_string(), metric))
                .copied()
                .unwrap_or(1.0);
            let normalised = raw_ratio / machine;
            // A true regression shows up in both views: raw (same-machine
            // comparisons) and control-normalised (slower CI runners).
            // Requiring both keeps control-row jitter from failing an
            // unchanged model.
            let ok = !tolerance.regressed(base_ips, cur_ips) || normalised >= tolerance.floor(1.0);
            failed |= !ok && !advisory;
            compared += 1;
            let status = if ok {
                "ok"
            } else if advisory {
                "WARN (row workers exceed baseline machine cores)"
            } else {
                "REGRESSION"
            };
            println!(
                "{:<14}{:<10}{:<9}{:>14.0}{:>14.0}{:>10.3}{:>12.3}  {}",
                model, stream, metric, base_ips, cur_ips, raw_ratio, normalised, status
            );
        }
    }
    if compared == 0 {
        return Err(format!(
            "no cells of {:?} found in both files",
            options.models
        ));
    }
    if failed {
        eprintln!(
            "throughput regression beyond {:.0} % tolerance (baseline {})",
            options.tolerance * 100.0,
            options.baseline
        );
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    let options = parse_options();
    match run(&options) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{cell_parallelism, name_parallelism, Row};

    #[test]
    fn name_parallelism_parses_the_nt_convention() {
        assert_eq!(name_parallelism("DMT (2T)"), Some(2));
        assert_eq!(name_parallelism("DMT (16T)"), Some(16));
        assert_eq!(name_parallelism("DMT (ours)"), None);
        assert_eq!(name_parallelism("VFDT (MC)"), None);
        assert_eq!(name_parallelism("FIMT-DD"), None);
        assert_eq!(name_parallelism("weird (T)"), None);
        assert_eq!(name_parallelism("weird (-3T)"), None);
    }

    #[test]
    fn cell_parallelism_prefers_the_recorded_field() {
        let mut row = Row::new();
        row.insert("parallelism".to_string(), 4.0);
        assert_eq!(cell_parallelism("DMT (2T)", &row), 4);
        assert_eq!(cell_parallelism("DMT (2T)", &Row::new()), 2);
        assert_eq!(cell_parallelism("DMT (ours)", &Row::new()), 1);
    }
}
