//! CI throughput-regression gate: compare a fresh `bench_throughput` run
//! against a committed `BENCH_<n>.json` baseline and fail (exit code 1) when
//! a tracked model regresses beyond the tolerance band.
//!
//! Raw instances/sec depends on the machine, so the comparison is also
//! normalised by a *control* model: for every stream, the ratio
//! `current/baseline` of the model under test is divided by the same ratio of
//! the control (`VFDT (MC)`, whose code path the perf-sensitive PRs do not
//! touch), cancelling a uniformly slower CI runner. A cell fails only when
//! *both* the raw and the control-normalised ratios fall below the tolerance
//! band — a true regression shows up in both views, while control-row jitter
//! or machine-speed changes alone show up in exactly one. Pass `--control ""`
//! to gate on the raw ratio only (e.g. for two runs on the same machine).
//!
//! ```bash
//! cargo run --release -p dmt-bench --bin bench_compare -- \
//!     --baseline BENCH_2.json --current /tmp/bench.json \
//!     --tolerance 0.15 --models "DMT (ours)"
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use dmt::eval::json::Json;

struct Options {
    baseline: String,
    current: String,
    /// Maximum tolerated relative regression (0.15 = fail below 85 % of the
    /// baseline throughput).
    tolerance: f64,
    /// Control model used to cancel machine speed; empty = raw comparison.
    control: String,
    /// Models the gate applies to (comma-separated display names).
    models: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            baseline: "BENCH_2.json".to_string(),
            current: "/tmp/bench_current.json".to_string(),
            tolerance: 0.15,
            control: "VFDT (MC)".to_string(),
            models: vec!["DMT (ours)".to_string()],
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--baseline" => {
                if let Some(v) = value {
                    options.baseline = v.clone();
                    i += 1;
                }
            }
            "--current" => {
                if let Some(v) = value {
                    options.current = v.clone();
                    i += 1;
                }
            }
            "--tolerance" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.tolerance = v;
                    i += 1;
                }
            }
            "--control" => {
                if let Some(v) = value {
                    options.control = v.clone();
                    i += 1;
                }
            }
            "--models" => {
                if let Some(v) = value {
                    options.models = v.split(',').map(|s| s.trim().to_string()).collect();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

/// `(model, stream) -> instances_per_sec` of one bench_throughput JSON file.
fn load_throughput(path: &str) -> Result<BTreeMap<(String, String), f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    let results = json
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path}: missing results array"))?;
    let mut out = BTreeMap::new();
    for cell in results {
        let model = cell
            .get("model")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}: cell without model"))?;
        let stream = cell
            .get("stream")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}: cell without stream"))?;
        let ips = cell
            .get("instances_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{path}: cell without instances_per_sec"))?;
        out.insert((model.to_string(), stream.to_string()), ips);
    }
    Ok(out)
}

fn run(options: &Options) -> Result<bool, String> {
    let baseline = load_throughput(&options.baseline)?;
    let current = load_throughput(&options.current)?;

    // Per-stream machine-speed factor from the control model.
    let mut control_ratio: BTreeMap<String, f64> = BTreeMap::new();
    if !options.control.is_empty() {
        for ((model, stream), &base_ips) in &baseline {
            if model == &options.control {
                if let Some(&cur_ips) = current.get(&(model.clone(), stream.clone())) {
                    if base_ips > 0.0 {
                        control_ratio.insert(stream.clone(), cur_ips / base_ips);
                    }
                }
            }
        }
    }

    println!(
        "{:<14}{:<10}{:>14}{:>14}{:>10}{:>12}  status",
        "Model", "Stream", "base i/s", "cur i/s", "ratio", "normalised"
    );
    let mut failed = false;
    let mut compared = 0usize;
    for ((model, stream), &base_ips) in &baseline {
        if !options.models.iter().any(|m| m == model) {
            continue;
        }
        let Some(&cur_ips) = current.get(&(model.clone(), stream.clone())) else {
            return Err(format!("current run misses cell ({model}, {stream})"));
        };
        if base_ips <= 0.0 {
            continue;
        }
        let raw_ratio = cur_ips / base_ips;
        let machine = control_ratio.get(stream).copied().unwrap_or(1.0);
        let normalised = raw_ratio / machine;
        // A true regression shows up in both views: raw (same-machine
        // comparisons) and control-normalised (slower CI runners). Requiring
        // both keeps control-row jitter from failing an unchanged model.
        let floor = 1.0 - options.tolerance;
        let ok = raw_ratio >= floor || normalised >= floor;
        failed |= !ok;
        compared += 1;
        println!(
            "{:<14}{:<10}{:>14.0}{:>14.0}{:>10.3}{:>12.3}  {}",
            model,
            stream,
            base_ips,
            cur_ips,
            raw_ratio,
            normalised,
            if ok { "ok" } else { "REGRESSION" }
        );
    }
    if compared == 0 {
        return Err(format!(
            "no cells of {:?} found in both files",
            options.models
        ));
    }
    if failed {
        eprintln!(
            "throughput regression beyond {:.0} % tolerance (baseline {})",
            options.tolerance * 100.0,
            options.baseline
        );
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    let options = parse_options();
    match run(&options) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_compare: {message}");
            ExitCode::FAILURE
        }
    }
}
