//! Reproduces **Figure 4** of the paper: predictive performance vs. model
//! complexity — every (model, data set) pair becomes one point with
//! x = log(number of splits) and y = average F1.
//!
//! If `results/tables_results.json` (written by the `table2_to_6` binary)
//! exists, its grid is reused; otherwise a fresh grid over the stand-alone
//! models is run. The points are written to `results/figure4.csv` and a
//! per-model average is printed (the quadrant summary the paper discusses:
//! ideally high F1 and few splits, i.e. the top-left corner).
//!
//! ```bash
//! cargo run -p dmt-bench --bin figure4 --release -- --scale 0.02
//! ```

use dmt::eval::json::{FromJson, Json};
use dmt::eval::mean;
use dmt::prelude::*;
use dmt_bench::{run_grid, GridCell, HarnessOptions};

fn load_or_run(options: &HarnessOptions) -> Vec<GridCell> {
    if let Ok(raw) = std::fs::read_to_string("results/tables_results.json") {
        if let Ok(cells) = Json::parse(&raw).and_then(|json| Vec::<GridCell>::from_json(&json)) {
            eprintln!(
                "reusing results/tables_results.json ({} cells)",
                cells.len()
            );
            return cells;
        }
    }
    let mut options = options.clone();
    options.models = STANDALONE_MODELS.to_vec();
    run_grid(&options)
}

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    let cells = load_or_run(&options);

    std::fs::create_dir_all("results").ok();
    let mut csv = vec!["model,dataset,avg_f1,avg_splits,log_avg_splits".to_string()];
    for cell in &cells {
        let (f1, _) = cell.result.f1_mean_std();
        let (splits, _) = cell.result.splits_mean_std();
        csv.push(format!(
            "{},{},{:.4},{:.2},{:.4}",
            cell.model,
            cell.dataset,
            f1,
            splits,
            splits.max(1.0).ln()
        ));
    }
    std::fs::write("results/figure4.csv", csv.join("\n")).expect("write figure4.csv");
    eprintln!("wrote results/figure4.csv");

    // Per-model averages over all data sets (the cluster centres of Fig. 4).
    println!("\n=== Figure 4: avg F1 vs avg log(no. of splits), per model ===");
    println!(
        "{:<14}{:>12}{:>22}",
        "Model", "Avg F1", "Avg log(no. splits)"
    );
    let model_names: Vec<String> = {
        let mut names: Vec<String> = cells.iter().map(|c| c.model.clone()).collect();
        names.sort();
        names.dedup();
        names
    };
    for model in &model_names {
        let of_model: Vec<&GridCell> = cells.iter().filter(|c| &c.model == model).collect();
        let f1s: Vec<f64> = of_model.iter().map(|c| c.result.f1_mean_std().0).collect();
        let log_splits: Vec<f64> = of_model
            .iter()
            .map(|c| c.result.splits_mean_std().0.max(1.0).ln())
            .collect();
        println!(
            "{:<14}{:>12.3}{:>22.2}",
            model,
            mean(&f1s),
            mean(&log_splits)
        );
    }
    println!(
        "\nThe paper's Figure 4 places the DMT in the desirable top-left region: competitive \
         F1 at a much smaller number of splits than the Hoeffding-tree variants."
    );
}
