//! Reproduces **Tables II–VI** of the paper:
//!
//! * Table II — prequential F1 (mean ± std over time) per model and data set,
//! * Table III — number of splits,
//! * Table IV — number of parameters,
//! * Table V — computation time per test/train iteration,
//! * Table VI — the qualitative summary ranking (++ / + / − / − −).
//!
//! The full grid (8 models × 13 data sets) is executed with the paper's
//! hyperparameters; the stream lengths are scaled by `--scale` (default 0.02)
//! so the run finishes on a laptop. Raw per-cell results are written to
//! `results/tables_results.json` for further analysis (e.g. `figure4`).
//!
//! ```bash
//! cargo run -p dmt-bench --bin table2_to_6 --release -- --scale 0.02
//! ```

use dmt_bench::{aggregate, rank_symbols, render_table, run_grid, write_json, HarnessOptions};

fn main() {
    let options = HarnessOptions::parse(std::env::args().skip(1));
    eprintln!(
        "Running {} models x {} data sets at scale {} (seed {})",
        options.models.len(),
        options.datasets.len(),
        options.scale,
        options.seed
    );
    let cells = run_grid(&options);
    let _ = write_json("tables_results.json", &cells);

    // Table II: F1.
    println!(
        "{}",
        render_table(
            "Table II: F1 measure (higher is better)",
            &cells,
            &options.models,
            &options.datasets,
            2,
            |r| r.f1_mean_std(),
        )
    );
    // Tables III-V only include the stand-alone models in the paper.
    let standalone: Vec<_> = options
        .models
        .iter()
        .copied()
        .filter(|m| !m.is_ensemble())
        .collect();
    println!(
        "{}",
        render_table(
            "Table III: Number of splits (lower is better)",
            &cells,
            &standalone,
            &options.datasets,
            1,
            |r| r.splits_mean_std(),
        )
    );
    println!(
        "{}",
        render_table(
            "Table IV: Number of parameters (lower is better)",
            &cells,
            &standalone,
            &options.datasets,
            0,
            |r| r.params_mean_std(),
        )
    );

    // Table V: computation time (aggregated over data sets, like the paper).
    let aggregates = aggregate(&cells, &standalone);
    println!("\n=== Table V: Computation time per test/train iteration in seconds ===");
    for aggregate in &aggregates {
        println!("{:<14}{:>12.5}", aggregate.model, aggregate.mean_seconds);
    }

    // Table VI: qualitative summary.
    let f1_overall: Vec<(String, f64)> = aggregates
        .iter()
        .map(|a| (a.model.clone(), a.mean_f1))
        .collect();
    let f1_drift: Vec<(String, f64)> = aggregates
        .iter()
        .map(|a| (a.model.clone(), a.mean_f1_drift))
        .collect();
    let complexity: Vec<(String, f64)> = aggregates
        .iter()
        .map(|a| (a.model.clone(), a.mean_splits))
        .collect();
    let efficiency: Vec<(String, f64)> = aggregates
        .iter()
        .map(|a| (a.model.clone(), a.mean_seconds))
        .collect();
    let rank_f1 = rank_symbols(&f1_overall, true);
    let rank_drift = rank_symbols(&f1_drift, true);
    let rank_complexity = rank_symbols(&complexity, false);
    let rank_efficiency = rank_symbols(&efficiency, false);

    println!("\n=== Table VI: Experiment summary ===");
    println!(
        "{:<14}{:>22}{:>26}{:>28}{:>26}",
        "Model",
        "Overall Pred. Perf.",
        "Pred. Perf. (known drift)",
        "Complexity/Interpretability",
        "Computational Efficiency"
    );
    for aggregate in &aggregates {
        let name = &aggregate.model;
        println!(
            "{:<14}{:>22}{:>26}{:>28}{:>26}",
            name, rank_f1[name], rank_drift[name], rank_complexity[name], rank_efficiency[name]
        );
    }
    let _ = write_json("table6_aggregates.json", &aggregates);

    println!(
        "\nNote: absolute numbers differ from the paper (different hardware, scaled streams, \
         simulated real-world data); the comparison of interest is the *relative* ordering of \
         the models, which EXPERIMENTS.md discusses row by row."
    );
}
