//! Throughput tracking for the repository's perf trajectory: test-then-train
//! instances/sec of the DMT (serial *and* threaded — the `DMT (2T)` row runs
//! the identical model with `Parallelism::Threads(2)`) and the stand-alone
//! baseline trees on the SEA, Agrawal and RBF generators, written to
//! `BENCH_<n>.json`.
//!
//! The protocol mirrors the paper's evaluation loop (predict a batch, then
//! learn it) but times nothing except the models: all stream batches are
//! materialised before the clock starts. Table V of the paper reports this
//! cost per iteration; here it is normalised to instances/sec so successive
//! PRs can be compared directly. A second, predict-only pass over the same
//! batches (model frozen at its final state, one reused predictions buffer)
//! isolates the descent/serving cost from training, so inference-path
//! regressions cannot hide behind learn-path wins.
//!
//! Streams and seeds come from the shared harness
//! ([`dmt_bench::throughput_stream`], [`dmt_bench::bench_seed`]): the stream
//! is rebuilt with the same seed for every model row, so all rows of one run
//! consume identical instance sequences. CI re-runs this binary on the same
//! pinned configuration and gates regressions with `bench_compare`.
//!
//! ```bash
//! cargo run -p dmt-bench --release --bin bench_throughput
//! cargo run -p dmt-bench --release --bin bench_throughput -- \
//!     --warmup 2000 --instances 40000 --batch 100 --out BENCH_4.json
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dmt::eval::json::{Json, ToJson};
use dmt::prelude::*;
use dmt::zoo::ZooModel;
use dmt_bench::THROUGHPUT_STREAMS;
use dmt_bench::{bench_seed, throughput_models, throughput_stream, ThroughputModel};
use dmt_serve::{DmtServer, ServeClient, ServeConfig};

struct Options {
    warmup: usize,
    instances: usize,
    batch: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            warmup: 2_000,
            instances: 40_000,
            batch: 100,
            out: "BENCH_5.json".to_string(),
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--warmup" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.warmup = v;
                    i += 1;
                }
            }
            "--instances" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.instances = v;
                    i += 1;
                }
            }
            "--batch" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.batch = v;
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = value {
                    options.out = v.clone();
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    options
}

struct CellResult {
    model: String,
    stream: String,
    /// Worker count pinned for this row (1 = serial). Lets `bench_compare`
    /// detect rows whose parallelism the baseline machine could not exercise.
    parallelism: u64,
    instances: u64,
    seconds: f64,
    instances_per_sec: f64,
    micros_per_batch: f64,
    predict_seconds: f64,
    predict_instances_per_sec: f64,
    final_splits: f64,
    final_params: f64,
    /// Resident heap bytes of the finished model (capacity-based accounting;
    /// informational in the timing file — the accuracy gate owns the ceiling).
    bytes_per_model: u64,
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("model".to_string(), self.model.to_json()),
            ("stream".to_string(), self.stream.to_json()),
            ("parallelism".to_string(), self.parallelism.to_json()),
            ("instances".to_string(), self.instances.to_json()),
            ("seconds".to_string(), self.seconds.to_json()),
            (
                "instances_per_sec".to_string(),
                self.instances_per_sec.to_json(),
            ),
            (
                "micros_per_batch".to_string(),
                self.micros_per_batch.to_json(),
            ),
            (
                "predict_seconds".to_string(),
                self.predict_seconds.to_json(),
            ),
            (
                "predict_instances_per_sec".to_string(),
                self.predict_instances_per_sec.to_json(),
            ),
            ("final_splits".to_string(), self.final_splits.to_json()),
            ("final_params".to_string(), self.final_params.to_json()),
            (
                "bytes_per_model".to_string(),
                self.bytes_per_model.to_json(),
            ),
        ])
    }
}

fn run_cell(kind: ThroughputModel, stream_name: &str, options: &Options) -> CellResult {
    let mut stream = throughput_stream(stream_name, bench_seed::STREAM)
        .unwrap_or_else(|| panic!("unknown bench stream {stream_name}"));
    let schema = stream.schema().clone();
    let mut model = kind.build(&schema, bench_seed::MODEL);

    // Materialise everything up front; only the model is timed.
    let warmup: Vec<Batch> = (0..options.warmup.div_ceil(options.batch))
        .filter_map(|_| stream.next_batch(options.batch))
        .collect();
    let timed: Vec<Batch> = (0..options.instances.div_ceil(options.batch))
        .filter_map(|_| stream.next_batch(options.batch))
        .collect();

    for batch in &warmup {
        let rows = batch.rows();
        model.learn_batch(&rows, &batch.ys);
    }

    let mut instances = 0u64;
    let mut batches = 0u64;
    let start = Instant::now();
    for batch in &timed {
        let rows = batch.rows();
        let predictions = model.predict_batch(&rows);
        std::hint::black_box(&predictions);
        model.learn_batch(&rows, &batch.ys);
        instances += rows.len() as u64;
        batches += 1;
    }
    let seconds = start.elapsed().as_secs_f64();

    // Predict-only passes over the same batches with the model frozen at its
    // final state, reusing one predictions buffer: isolates the serving-path
    // (descent + leaf kernel) cost from training. Prediction is an order of
    // magnitude faster than test-then-train, so the batches are swept
    // several times — a single sweep finishes in a few milliseconds, far too
    // short a window for a stable regression gate on a noisy machine.
    const PREDICT_SWEEPS: usize = 10;
    let mut predictions = vec![0usize; options.batch];
    let mut predict_instances = 0u64;
    let predict_start = Instant::now();
    for _ in 0..PREDICT_SWEEPS {
        for batch in &timed {
            let rows = batch.rows();
            predictions.clear();
            predictions.resize(rows.len(), 0);
            model.predict_batch_into(&rows, &mut predictions);
            std::hint::black_box(&predictions);
            predict_instances += rows.len() as u64;
        }
    }
    let predict_seconds = predict_start.elapsed().as_secs_f64();

    let complexity = model.complexity();
    let bytes_per_model = model.memory_bytes() as u64;
    CellResult {
        model: kind.display_name(),
        stream: stream_name.to_string(),
        parallelism: kind.pinned_workers() as u64,
        instances,
        seconds,
        instances_per_sec: instances as f64 / seconds,
        micros_per_batch: seconds * 1e6 / batches.max(1) as f64,
        predict_seconds,
        predict_instances_per_sec: predict_instances as f64 / predict_seconds,
        final_splits: complexity.splits,
        final_params: complexity.parameters,
        bytes_per_model,
    }
}

/// Predict requests per serve-latency phase.
const SERVE_REQUESTS: usize = 2_000;

/// One serve-latency measurement: a client firing predict RPCs at a
/// `dmt-serve` plane, per-request latency quantiles in microseconds.
struct ServeLatency {
    mode: String,
    stream: String,
    requests: u64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    instances_per_sec: f64,
}

impl ToJson for ServeLatency {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mode".to_string(), self.mode.to_json()),
            ("stream".to_string(), self.stream.to_json()),
            ("requests".to_string(), self.requests.to_json()),
            ("p50_us".to_string(), self.p50_us.to_json()),
            ("p99_us".to_string(), self.p99_us.to_json()),
            ("max_us".to_string(), self.max_us.to_json()),
            (
                "instances_per_sec".to_string(),
                self.instances_per_sec.to_json(),
            ),
        ])
    }
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn serve_latency_cell(
    mode: &str,
    stream_name: &str,
    client: &mut ServeClient,
    batch: &Batch,
) -> ServeLatency {
    let rows = batch.rows();
    let mut latencies_us = Vec::with_capacity(SERVE_REQUESTS);
    let start = Instant::now();
    for _ in 0..SERVE_REQUESTS {
        let request_start = Instant::now();
        let (_, predictions) = client.predict("bench", &rows).expect("predict rpc");
        std::hint::black_box(&predictions);
        latencies_us.push(request_start.elapsed().as_secs_f64() * 1e6);
    }
    let seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    ServeLatency {
        mode: mode.to_string(),
        stream: stream_name.to_string(),
        requests: SERVE_REQUESTS as u64,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: percentile(&latencies_us, 1.0),
        instances_per_sec: (SERVE_REQUESTS * rows.len()) as f64 / seconds,
    }
}

/// The serving-plane rows: per-request predict latency through `dmt-serve`
/// over TCP, first with the tenant idle, then with a second client running
/// `learn_batch` RPCs (splits included) the whole time. Because predictions
/// answer from pinned epoch snapshots and never take the writer lock, the
/// two latency distributions should be indistinguishable — the epoch
/// refactor's whole point, measured end to end.
fn run_serve_rows(options: &Options) -> Vec<ServeLatency> {
    let stream_name = THROUGHPUT_STREAMS[0];
    let mut stream =
        throughput_stream(stream_name, bench_seed::STREAM).expect("known bench stream");
    let schema = stream.schema().clone();
    let warmup: Vec<Batch> = (0..options.warmup.div_ceil(options.batch))
        .filter_map(|_| stream.next_batch(options.batch))
        .collect();
    let learn_feed: Vec<Batch> = (0..options.instances.div_ceil(options.batch))
        .filter_map(|_| stream.next_batch(options.batch))
        .collect();
    let probe = warmup.last().expect("warmup batches").clone();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    let tree = DynamicModelTree::new(
        schema,
        DmtConfig {
            seed: bench_seed::MODEL,
            parallelism: Parallelism::from_env(),
            ..DmtConfig::default()
        },
    );
    registry
        .register("bench", stream.schema().clone(), ZooModel::Dmt(tree))
        .expect("register bench tenant");
    let server = DmtServer::start(
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
        Arc::clone(&registry),
    )
    .expect("start serve plane");
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    for batch in &warmup {
        client
            .learn("bench", &batch.rows(), &batch.ys)
            .expect("warmup learn rpc");
    }

    let idle = serve_latency_cell("predict-only", stream_name, &mut client, &probe);

    // Same measurement with a writer hammering learn RPCs concurrently.
    let stop = Arc::new(AtomicBool::new(false));
    let learner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut writer = ServeClient::connect(addr).expect("learner connect");
            loop {
                for batch in &learn_feed {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    writer
                        .learn("bench", &batch.rows(), &batch.ys)
                        .expect("learn rpc");
                }
            }
        })
    };
    let contended = serve_latency_cell("concurrent-learn", stream_name, &mut client, &probe);
    stop.store(true, Ordering::Relaxed);
    learner.join().expect("learner thread");

    vec![idle, contended]
}

fn main() {
    let options = parse_options();
    let mut results: Vec<CellResult> = Vec::new();

    println!(
        "{:<14}{:<10}{:>16}{:>16}{:>18}{:>12}{:>12}",
        "Model", "Stream", "inst/sec", "µs/batch", "predict inst/sec", "splits", "KiB"
    );
    for stream in THROUGHPUT_STREAMS {
        for &kind in &throughput_models() {
            let cell = run_cell(kind, stream, &options);
            println!(
                "{:<14}{:<10}{:>16.0}{:>16.1}{:>18.0}{:>12.1}{:>12.1}",
                cell.model,
                cell.stream,
                cell.instances_per_sec,
                cell.micros_per_batch,
                cell.predict_instances_per_sec,
                cell.final_splits,
                cell.bytes_per_model as f64 / 1024.0
            );
            results.push(cell);
        }
    }

    // Serving-plane latency: predict RPC quantiles with and without a
    // concurrent writer. Lives under its own JSON key so the blessed
    // `results` rows (and the `bench_compare` gate that walks them) are
    // untouched.
    let serve_rows = run_serve_rows(&options);
    println!(
        "\n{:<18}{:<10}{:>12}{:>12}{:>12}{:>16}",
        "Serve mode", "Stream", "p50 µs", "p99 µs", "max µs", "inst/sec"
    );
    for row in &serve_rows {
        println!(
            "{:<18}{:<10}{:>12.1}{:>12.1}{:>12.1}{:>16.0}",
            row.mode, row.stream, row.p50_us, row.p99_us, row.max_us, row.instances_per_sec
        );
    }

    let doc = Json::Obj(vec![
        ("bench".to_string(), "throughput_v2".to_json()),
        (
            "protocol".to_string(),
            "test-then-train; batches pre-materialised; wall clock covers predict_batch + learn_batch only; \
             predict_* fields re-run the batches predict-only on the final model"
                .to_json(),
        ),
        (
            "config".to_string(),
            Json::Obj(vec![
                ("warmup_instances".to_string(), options.warmup.to_json()),
                ("timed_instances".to_string(), options.instances.to_json()),
                ("batch_size".to_string(), options.batch.to_json()),
                // Core count of the machine this file was produced on. When
                // a file becomes a blessed baseline, `bench_compare` uses it
                // to downgrade (warn instead of fail) parallel rows whose
                // pinned workers the baseline machine could never run
                // concurrently — a 2T row blessed on one core records
                // dispatch overhead, not parallel throughput.
                (
                    "available_parallelism".to_string(),
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .to_json(),
                ),
            ]),
        ),
        ("results".to_string(), results.to_json()),
        ("serve".to_string(), serve_rows.to_json()),
    ]);
    std::fs::write(&options.out, doc.to_pretty_string()).expect("write bench output");
    eprintln!("wrote {}", options.out);
}
