//! Prequential accuracy tracking for the repository's *quality* trajectory:
//! the throughput suite (`bench_throughput`) catches perf regressions, this
//! suite catches silent quality regressions — a refactor that keeps the
//! trees fast but subtly breaks split selection, drift adaptation or the
//! nominal-feature path.
//!
//! Every stand-alone model of Table II runs test-then-train over the named
//! real-world-style workloads of [`dmt::stream::workload`] (electricity-like
//! series, covertype-like high-cardinality nominals, imbalanced sparse
//! fraud-like events, and an abrupt+gradual drift cocktail). The workloads
//! are deterministically synthesized CSV files (pinned seeds, byte-stable,
//! generated once into `results/datasets/`) loaded through the real
//! `load_csv` file path, so a run is reproducible on any machine without a
//! network. Batches are sized at 0.1 % of the stream like the paper's
//! protocol; per (model, workload) cell the suite records overall accuracy,
//! Cohen's kappa (chance-corrected — catches majority-class collapse that
//! raw accuracy hides on the imbalanced workload) and stream-level F1,
//! written to `BENCH_ACC.json`. CI re-runs this binary on the same pinned
//! configuration and gates regressions with `acc_compare`.
//!
//! The DMT row is pinned to serial updates ([`dmt_bench::accuracy_model`]);
//! parallel updates are bit-identical, but pinning keeps the blessed file
//! independent of the `DMT_PARALLELISM` environment variable.
//!
//! Besides the workloads, the suite folds the paper-reproduction surface into
//! the same gate: every Table I data set of the catalog
//! ([`dmt::stream::catalog::TABLE1`]) runs at a pinned small scale
//! (`--paper-scale`, default 1 % of the published stream size; `--no-paper`
//! skips the grid) and is recorded under the `paper:<dataset>` workload name
//! — so a change that shifts the paper tables now fails `acc_compare` instead
//! of silently drifting until someone re-runs `table1`/`table2_to_6` by hand.
//!
//! ```bash
//! cargo run --release -p dmt-bench --bin bench_accuracy
//! cargo run --release -p dmt-bench --bin bench_accuracy -- \
//!     --out /tmp/acc_current.json --workloads elec-like --max-batches 5
//! ```

use std::path::PathBuf;

use dmt::eval::json::{Json, ToJson};
use dmt::eval::{PrequentialConfig, PrequentialRun};
use dmt::prelude::*;
use dmt::stream::catalog;
use dmt::stream::workload::{self, WORKLOADS};
use dmt_bench::{accuracy_model, bench_seed};

/// Stream scale of the paper-reproduction cells: every Table I data set is
/// truncated to this fraction of its published size, so the full paper grid
/// stays a seconds-scale CI job while still exercising each simulator's
/// schema (nominal cardinalities, class counts, drift profile).
const DEFAULT_PAPER_SCALE: f64 = 0.01;

struct Options {
    out: String,
    /// Directory the synthesized CSV files live in (created on demand).
    datasets_dir: PathBuf,
    /// Workload names to run (default: every catalog workload).
    workloads: Vec<String>,
    /// Model rows to run.
    models: Vec<ModelKind>,
    /// Optional cap on the number of prequential batches (smoke tests).
    max_batches: Option<usize>,
    /// Scale of the paper-reproduction (Table I) cells; `0` skips them
    /// entirely (`--paper-scale 0` or `--no-paper`).
    paper_scale: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            out: "BENCH_ACC.json".to_string(),
            datasets_dir: workload::default_datasets_dir(),
            workloads: WORKLOADS.iter().map(|w| w.name.to_string()).collect(),
            models: STANDALONE_MODELS.to_vec(),
            max_batches: None,
            paper_scale: DEFAULT_PAPER_SCALE,
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match args[i].as_str() {
            "--out" => {
                if let Some(v) = value {
                    options.out = v.clone();
                    i += 1;
                }
            }
            "--datasets-dir" => {
                if let Some(v) = value {
                    options.datasets_dir = PathBuf::from(v);
                    i += 1;
                }
            }
            "--workloads" => {
                if let Some(v) = value {
                    options.workloads = v.split(',').map(|s| s.trim().to_string()).collect();
                    i += 1;
                }
            }
            "--models" => {
                if let Some(v) = value {
                    options.models = match v.as_str() {
                        "dmt" => vec![ModelKind::Dmt],
                        "all" => ALL_MODELS.to_vec(),
                        _ => STANDALONE_MODELS.to_vec(),
                    };
                    i += 1;
                }
            }
            "--max-batches" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.max_batches = Some(v);
                    i += 1;
                }
            }
            "--paper-scale" => {
                if let Some(v) = value.and_then(|v| v.parse().ok()) {
                    options.paper_scale = v;
                    i += 1;
                }
            }
            "--no-paper" => {
                options.paper_scale = 0.0;
            }
            _ => {}
        }
        i += 1;
    }
    options
}

struct CellResult {
    model: String,
    workload: String,
    instances: u64,
    batches: u64,
    accuracy: f64,
    kappa: f64,
    f1: f64,
    final_splits: f64,
    final_params: f64,
    /// Resident heap bytes of the finished model — deterministic for a
    /// pinned run, so the accuracy gate can put an absolute ceiling on it.
    bytes_per_model: u64,
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("model".to_string(), self.model.to_json()),
            ("workload".to_string(), self.workload.to_json()),
            ("instances".to_string(), self.instances.to_json()),
            ("batches".to_string(), self.batches.to_json()),
            ("accuracy".to_string(), self.accuracy.to_json()),
            ("kappa".to_string(), self.kappa.to_json()),
            ("f1".to_string(), self.f1.to_json()),
            ("final_splits".to_string(), self.final_splits.to_json()),
            ("final_params".to_string(), self.final_params.to_json()),
            (
                "bytes_per_model".to_string(),
                self.bytes_per_model.to_json(),
            ),
        ])
    }
}

fn run_cell(kind: ModelKind, workload_name: &str, options: &Options) -> CellResult {
    // Rebuilt from its pinned-seed file per cell, so every model row of one
    // run consumes the identical instance sequence.
    let stream = workload::build_workload(workload_name, &options.datasets_dir)
        .unwrap_or_else(|e| panic!("workload {workload_name}: {e}"))
        .unwrap_or_else(|| panic!("unknown workload {workload_name}"));
    evaluate_cell(kind, workload_name.to_string(), stream, options)
}

/// One paper-reproduction cell: a Table I stream at the pinned
/// `--paper-scale`, recorded under the `paper:<dataset>` workload name so the
/// `acc_compare` gate covers the paper grid with the same tolerances as the
/// real-world-style workloads.
fn run_paper_cell(kind: ModelKind, dataset: &str, options: &Options) -> CellResult {
    let stream = catalog::build_stream(dataset, options.paper_scale, bench_seed::STREAM)
        .unwrap_or_else(|| panic!("unknown Table I dataset {dataset}"));
    evaluate_cell(kind, format!("paper:{dataset}"), stream, options)
}

fn evaluate_cell(
    kind: ModelKind,
    workload_name: String,
    mut stream: Box<dyn DataStream>,
    options: &Options,
) -> CellResult {
    let schema = stream.schema().clone();
    let mut model = accuracy_model(kind, &schema, bench_seed::MODEL);
    let runner = PrequentialRun::new(PrequentialConfig {
        max_batches: options.max_batches,
        ..PrequentialConfig::default()
    });
    let result = runner.evaluate(model.as_mut(), &mut stream, None);
    let complexity = model.complexity();
    let bytes_per_model = model.memory_bytes() as u64;
    CellResult {
        model: kind.display_name().to_string(),
        workload: workload_name,
        instances: result.instances,
        batches: result.num_batches() as u64,
        accuracy: result.overall_accuracy,
        kappa: result.overall_kappa,
        f1: result.overall_f1,
        final_splits: complexity.splits,
        final_params: complexity.parameters,
        bytes_per_model,
    }
}

fn main() {
    let options = parse_options();
    workload::ensure_all_datasets(&options.datasets_dir)
        .unwrap_or_else(|e| panic!("synthesize datasets into {:?}: {e}", options.datasets_dir));

    let mut results: Vec<CellResult> = Vec::new();
    println!(
        "{:<14}{:<16}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "Model", "Workload", "accuracy", "kappa", "f1", "splits", "KiB"
    );
    for workload_name in &options.workloads {
        for &kind in &options.models {
            let cell = run_cell(kind, workload_name, &options);
            println!(
                "{:<14}{:<16}{:>10.4}{:>10.4}{:>10.4}{:>10.1}{:>12.1}",
                cell.model,
                cell.workload,
                cell.accuracy,
                cell.kappa,
                cell.f1,
                cell.final_splits,
                cell.bytes_per_model as f64 / 1024.0
            );
            results.push(cell);
        }
    }

    // Paper-reproduction grid: every Table I data set at the pinned scale,
    // same models, same gate. Cells are named `paper:<dataset>` so the
    // blessed file keeps the two surfaces distinguishable.
    if options.paper_scale > 0.0 {
        for info in &catalog::TABLE1 {
            for &kind in &options.models {
                let cell = run_paper_cell(kind, info.name, &options);
                println!(
                    "{:<14}{:<16}{:>10.4}{:>10.4}{:>10.4}{:>10.1}{:>12.1}",
                    cell.model,
                    cell.workload,
                    cell.accuracy,
                    cell.kappa,
                    cell.f1,
                    cell.final_splits,
                    cell.bytes_per_model as f64 / 1024.0
                );
                results.push(cell);
            }
        }
    }

    let config = PrequentialConfig::default();
    let doc = Json::Obj(vec![
        ("bench".to_string(), "accuracy_v1".to_json()),
        (
            "protocol".to_string(),
            "prequential test-then-train over deterministically synthesized workload files \
             (pinned seeds, batch = 0.1 % of the stream); accuracy/kappa/f1 are stream-level \
             over the whole run; DMT pinned to serial updates"
                .to_json(),
        ),
        (
            "config".to_string(),
            Json::Obj(vec![
                (
                    "batch_fraction".to_string(),
                    config.batch_fraction.to_json(),
                ),
                (
                    "min_batch_size".to_string(),
                    config.min_batch_size.to_json(),
                ),
                ("model_seed".to_string(), bench_seed::MODEL.to_json()),
                ("paper_scale".to_string(), options.paper_scale.to_json()),
            ]),
        ),
        ("results".to_string(), results.to_json()),
    ]);
    std::fs::write(&options.out, doc.to_pretty_string()).expect("write bench output");
    eprintln!("wrote {}", options.out);
}
