//! End-to-end battery for `dmt_lint`: every lint must trip on the committed
//! fixture tree (`tests/fixtures/tree/` — a miniature workspace with one
//! violation per lint), and the real workspace self-run must be clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use dmt_verify::lints::Diagnostic;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tree")
}

fn fixture_diagnostics() -> Vec<Diagnostic> {
    dmt_verify::run_workspace(&fixture_root()).expect("fixture tree is readable")
}

fn expect_one(diags: &[Diagnostic], lint: &str, file: &str, line: u32) {
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == lint && d.file == file)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {lint} in {file}, got {hits:#?}\nall: {diags:#?}"
    );
    assert_eq!(hits[0].line, line, "wrong line for {lint} in {file}");
}

#[test]
fn each_lint_trips_on_its_fixture() {
    let diags = fixture_diagnostics();
    expect_one(
        &diags,
        "forbidden-unsafe",
        "crates/dmt-core/src/arena.rs",
        5,
    );
    expect_one(
        &diags,
        "missing-safety",
        "crates/dmt-core/src/parallel.rs",
        7,
    );
    expect_one(&diags, "forbidden-spawn", "crates/dmt-eval/src/lib.rs", 5);
    expect_one(&diags, "panic-free", "crates/dmt-core/src/tree.rs", 5);
    expect_one(
        &diags,
        "nondeterministic-time",
        "crates/dmt-core/src/clock.rs",
        5,
    );
    expect_one(
        &diags,
        "hot-path-alloc",
        "crates/dmt-core/src/scratch.rs",
        10,
    );
    expect_one(&diags, "version-skew", "crates/dmt-models/src/wire.rs", 3);
}

#[test]
fn fixtures_do_not_overreport() {
    let diags = fixture_diagnostics();
    // The covered unsafe item, the test-gated spawn/unwrap, the cold-path
    // to_vec and the clean referrer must all stay silent: exactly the seven
    // per-file findings above plus the allowlist over-budget summary line.
    let summaries = diags
        .iter()
        .filter(|d| d.file == "crates/dmt-verify/panic_allowlist.txt")
        .count();
    assert_eq!(summaries, 1, "{diags:#?}");
    assert_eq!(diags.len(), 8, "{diags:#?}");
}

#[test]
fn lint_binary_fails_with_file_line_diagnostics_on_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_dmt_lint"))
        .arg(fixture_root())
        .output()
        .expect("dmt_lint runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(
        stdout.contains("crates/dmt-core/src/arena.rs:5: [forbidden-unsafe]"),
        "diagnostics must be file:line-addressed:\n{stdout}"
    );
    assert!(stdout.contains("[version-skew]"), "{stdout}");
}

#[test]
fn workspace_self_run_is_clean() {
    let root = dmt_verify::workspace_root().expect("workspace root");
    let diags = dmt_verify::run_workspace(&root).expect("workspace is readable");
    assert!(
        diags.is_empty(),
        "the committed workspace must satisfy its own invariants:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let out = Command::new(env!("CARGO_BIN_EXE_dmt_lint"))
        .output()
        .expect("dmt_lint runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
