//! Fixture: an ad-hoc OS thread outside the managed pools →
//! `forbidden-spawn`. The test-gated spawn must NOT count.

pub fn rogue() {
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
