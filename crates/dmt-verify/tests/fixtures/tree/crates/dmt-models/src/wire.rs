//! Fixture: a lockstep version constant that drifted → `version-skew`.

pub const WIRE_FORMAT_VERSION: u32 = 1;
