//! Fixture: an allocation inside the designated hot function `gather`
//! → `hot-path-alloc`; the same call in a cold function is clean.

pub struct Scratch {
    buf: Vec<f64>,
}

impl Scratch {
    pub fn gather(&mut self, xs: &[f64]) {
        self.buf = xs.to_vec();
    }

    pub fn cold(&self, xs: &[f64]) -> Vec<f64> {
        xs.to_vec()
    }
}
