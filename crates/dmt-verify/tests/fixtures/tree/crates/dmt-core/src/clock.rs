//! Fixture: wall-clock reads in a deterministic crate →
//! `nondeterministic-time`.

pub fn stamp() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
