//! Fixture: the canonical wire-format version constant.

pub const SNAPSHOT_VERSION: u32 = 2;
