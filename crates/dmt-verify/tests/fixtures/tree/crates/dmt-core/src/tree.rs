//! Fixture: panic-capable calls in library code with no allowlist budget
//! → `panic-free`. The test-gated ones must NOT count.

pub fn brittle(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        Some(1u32).unwrap();
    }
}
