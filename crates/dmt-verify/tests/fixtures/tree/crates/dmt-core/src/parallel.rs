//! Fixture: `unsafe` is *allowed* in this path, but the second occurrence
//! has no `// SAFETY:` comment → `missing-safety`.

// SAFETY: fixture — a documented unsafe item is clean.
unsafe impl Send for Covered {}

unsafe impl Send for Uncovered {}

struct Covered;
struct Uncovered;
