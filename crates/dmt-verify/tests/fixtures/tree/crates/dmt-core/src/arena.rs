//! Fixture: `unsafe` outside the allowed file → `forbidden-unsafe`.

pub fn touch(p: *mut u8) -> u8 {
    // SAFETY: a comment does not make the location legal.
    unsafe { *p }
}
