//! Fixture: a referrer that imports the canonical constant — clean.

pub fn frame_version() -> u32 {
    dmt_core::snapshot::SNAPSHOT_VERSION
}
