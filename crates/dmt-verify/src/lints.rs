//! The lint passes. Each pass walks the token stream of a
//! [`SourceFile`] and emits [`Diagnostic`]s;
//! [`crate::run_workspace`] drives them over every library source file.
//!
//! | lint                | invariant                                                            |
//! |---------------------|----------------------------------------------------------------------|
//! | `forbidden-unsafe`  | `unsafe` only in the worker pool's hand-off module                   |
//! | `missing-safety`    | every allowed `unsafe` opens with a `// SAFETY:` comment             |
//! | `forbidden-spawn`   | OS threads only from the two managed pools                           |
//! | `panic-free`        | no `unwrap()`/`expect()`/`panic!` in library code beyond the ratchet |
//! | `nondeterministic-time` | no `Instant`/`SystemTime` on the deterministic learn/predict path|
//! | `hot-path-alloc`    | no allocation calls inside the designated hot functions              |
//! | `version-skew`      | one wire-format version constant, referenced — never forked          |
//! | `stale-allowlist` / `stale-hot-path` | the policy tables match reality               |

use crate::config::WorkspaceConfig;
use crate::source::SourceFile;

/// One lint finding, formatted by the binary as
/// `<file>:<line>: [<lint>] <message>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint identifier (stable, kebab-case).
    pub lint: &'static str,
    /// Human-readable explanation with the remediation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

fn diag(file: &str, line: u32, lint: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    }
}

/// Whether `rel_path` belongs to one of `crates` (by the directory segment
/// after `crates/`), is under its `src/`, and is not a `src/bin/` CLI entry
/// point.
fn in_crate_library(rel_path: &str, crates: &[&str]) -> bool {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let Some((crate_name, inner)) = rest.split_once('/') else {
        return false;
    };
    crates.contains(&crate_name) && inner.starts_with("src/") && !inner.starts_with("src/bin/")
}

// ---------------------------------------------------------------------------
// unsafe / SAFETY
// ---------------------------------------------------------------------------

/// `forbidden-unsafe` + `missing-safety`: the `unsafe` keyword is allowed
/// only in the configured files, and there every occurrence must be covered
/// by a `// SAFETY:` comment — either directly above its statement, or by
/// being nested inside the brace range of an already-covered `unsafe` item
/// (an `unsafe impl`'s methods, an `unsafe fn`'s inner blocks).
pub fn lint_unsafe(file: &SourceFile<'_>, cfg: &WorkspaceConfig, out: &mut Vec<Diagnostic>) {
    let allowed = cfg.unsafe_allowed_files.contains(&file.rel_path.as_str());
    let mut covered_until = 0usize; // token index; coverage from a prior unsafe item
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            out.push(diag(
                &file.rel_path,
                t.line,
                "forbidden-unsafe",
                "`unsafe` is allowed only in crates/dmt-core/src/parallel.rs \
                 (the worker pool's documented lifetime hand-off)"
                    .to_string(),
            ));
            continue;
        }
        if i < covered_until {
            continue; // nested inside a covered unsafe item
        }
        if file.has_safety_comment_above(t.line) {
            // Extend coverage over this item's brace range, so an
            // `unsafe impl`'s `unsafe fn`s ride on the impl's comment.
            let mut j = i + 1;
            while j < file.tokens.len() {
                if file.tokens[j].is_punct("{") {
                    if let Some(end) = file.matching_brace(j) {
                        covered_until = end;
                    }
                    break;
                }
                if file.tokens[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
        } else {
            out.push(diag(
                &file.rel_path,
                t.line,
                "missing-safety",
                "`unsafe` without a `// SAFETY:` comment block directly above it".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// thread spawns
// ---------------------------------------------------------------------------

/// `forbidden-spawn`: a `.spawn(…)` / `::spawn(…)` call outside the two
/// managed thread pools. Test code is exempt.
pub fn lint_spawn(file: &SourceFile<'_>, cfg: &WorkspaceConfig, out: &mut Vec<Diagnostic>) {
    if cfg.spawn_allowed_files.contains(&file.rel_path.as_str()) {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("spawn") || file.is_test(i) {
            continue;
        }
        let preceded_by_path = i > 0
            && (file.tokens[i - 1].is_punct(".")
                || (file.tokens[i - 1].is_punct(":") && i > 1 && file.tokens[i - 2].is_punct(":")));
        if preceded_by_path {
            out.push(diag(
                &file.rel_path,
                t.line,
                "forbidden-spawn",
                "thread spawn outside the WorkerPool / dmt-serve acceptors — \
                 unmanaged threads escape the shutdown protocols"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// panic-free library code
// ---------------------------------------------------------------------------

/// Count and report `unwrap()` / `expect()` / `panic!` occurrences outside
/// `#[cfg(test)]`. Returns the number found (the allowlist reconciliation
/// in [`crate::run_workspace`] decides what to do with it); diagnostics for
/// each site are appended to `sites`.
pub fn scan_panics(file: &SourceFile<'_>, sites: &mut Vec<Diagnostic>) -> usize {
    let mut found = 0usize;
    for (i, t) in file.tokens.iter().enumerate() {
        if file.is_test(i) {
            continue;
        }
        let hit = if t.is_ident("unwrap") || t.is_ident("expect") {
            i > 0 && file.tokens[i - 1].is_punct(".")
        } else if t.is_ident("panic") {
            file.tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        } else {
            false
        };
        if hit {
            found += 1;
            sites.push(diag(
                &file.rel_path,
                t.line,
                "panic-free",
                format!(
                    "`{}` in library code — return a typed error instead \
                     (or budget it in the panic allowlist with a justification)",
                    t.text
                ),
            ));
        }
    }
    found
}

// ---------------------------------------------------------------------------
// wall-clock time on the deterministic path
// ---------------------------------------------------------------------------

/// `nondeterministic-time`: `Instant` / `SystemTime` references in the
/// deterministic crates. Test code is exempt (tests may time themselves).
pub fn lint_time(file: &SourceFile<'_>, cfg: &WorkspaceConfig, out: &mut Vec<Diagnostic>) {
    if !in_crate_library(&file.rel_path, cfg.deterministic_crates) {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if file.is_test(i) {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(diag(
                &file.rel_path,
                t.line,
                "nondeterministic-time",
                format!(
                    "`{}` on the deterministic learn/predict path — results \
                     must be a pure function of the input stream and seed",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// hot-path allocations
// ---------------------------------------------------------------------------

/// `hot-path-alloc` + `stale-hot-path`: inside the designated function
/// bodies, flag `Vec::new`, `vec![…]`, `.to_vec()`, `.collect()` and
/// `Box::new`. Designated functions that do not exist any more are reported
/// so the table tracks the code.
pub fn lint_hot_alloc(file: &SourceFile<'_>, cfg: &WorkspaceConfig, out: &mut Vec<Diagnostic>) {
    let Some((_, fns)) = cfg
        .hot_path_fns
        .iter()
        .find(|(path, _)| *path == file.rel_path.as_str())
    else {
        return;
    };
    for fn_name in *fns {
        if !file.fn_spans().iter().any(|f| f.name == *fn_name) {
            out.push(diag(
                &file.rel_path,
                1,
                "stale-hot-path",
                format!(
                    "designated hot function `{fn_name}` no longer exists — \
                     update the table in crates/dmt-verify/src/config.rs"
                ),
            ));
        }
    }
    for (i, t) in file.tokens.iter().enumerate() {
        let in_hot = file.enclosing_fns(i).any(|name| fns.contains(&name));
        if !in_hot || file.is_test(i) {
            continue;
        }
        let what = if t.is_ident("collect") || t.is_ident("to_vec") {
            let method = i > 0 && file.tokens[i - 1].is_punct(".");
            method.then(|| format!(".{}()", t.text))
        } else if t.is_ident("new") {
            let qualified = i >= 2
                && file.tokens[i - 1].is_punct(":")
                && file.tokens[i - 2].is_punct(":")
                && i >= 3
                && (file.tokens[i - 3].is_ident("Vec") || file.tokens[i - 3].is_ident("Box"));
            qualified.then(|| format!("{}::new", file.tokens[i - 3].text))
        } else if t.is_ident("vec") {
            let is_macro = file.tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
            is_macro.then(|| "vec![…]".to_string())
        } else {
            None
        };
        if let Some(what) = what {
            out.push(diag(
                &file.rel_path,
                t.line,
                "hot-path-alloc",
                format!(
                    "`{what}` inside designated hot function — the steady-state \
                     path must reuse scratch buffers (see tests/integration_alloc.rs)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// wire-format version skew
// ---------------------------------------------------------------------------

/// Extract `const <name with VERSION>: … = <integer>` declarations.
fn version_consts(file: &SourceFile<'_>) -> Vec<(String, u64, u32)> {
    let mut found = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if !name_tok.text.contains("VERSION") {
            continue;
        }
        // Scan ahead for `= <number>` before the terminating `;`.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct(";") {
            if toks[j].is_punct("=") {
                if let Some(value) = toks.get(j + 1).and_then(|t| parse_int(t.text)) {
                    found.push((name_tok.text.to_string(), value, name_tok.line));
                }
                break;
            }
            j += 1;
        }
    }
    found
}

fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        u64::from_str_radix(&digits, 16).ok()
    } else {
        let digits: String = cleaned.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            None
        } else {
            digits.parse().ok()
        }
    }
}

/// `version-skew`: the snapshot envelope, the model wire codec and the serve
/// framing must agree on one format version. The source file must define
/// `SNAPSHOT_VERSION`; every referrer must *use* that identifier and must
/// not fork a diverging `…VERSION` literal of its own.
pub fn lint_versions(files: &[SourceFile<'_>], cfg: &WorkspaceConfig, out: &mut Vec<Diagnostic>) {
    let Some(source) = files.iter().find(|f| f.rel_path == cfg.version_source_file) else {
        out.push(diag(
            cfg.version_source_file,
            1,
            "version-skew",
            "version source file missing from the scan".to_string(),
        ));
        return;
    };
    let canonical = version_consts(source)
        .into_iter()
        .find(|(name, _, _)| name == "SNAPSHOT_VERSION");
    let Some((_, canonical_value, _)) = canonical else {
        out.push(diag(
            &source.rel_path,
            1,
            "version-skew",
            "no `const SNAPSHOT_VERSION … = <int>` found — the canonical \
             wire-format version constant moved or was renamed"
                .to_string(),
        ));
        return;
    };
    for referrer_path in cfg.version_referrer_files {
        let Some(referrer) = files.iter().find(|f| f.rel_path == *referrer_path) else {
            out.push(diag(
                referrer_path,
                1,
                "version-skew",
                "wire-format referrer file missing from the scan".to_string(),
            ));
            continue;
        };
        let references = referrer
            .tokens
            .iter()
            .any(|t| t.is_ident("SNAPSHOT_VERSION"));
        let locals = version_consts(referrer);
        // A referrer is wired in either by importing the canonical constant
        // or by carrying a lockstep `…VERSION` const of its own (the
        // bottom-of-stack wire primitives cannot import upward); a file with
        // neither has silently dropped out of the cross-check.
        if !references && locals.is_empty() {
            out.push(diag(
                &referrer.rel_path,
                1,
                "version-skew",
                "neither references SNAPSHOT_VERSION nor declares a lockstep \
                 `…VERSION` constant — the file dropped out of the \
                 wire-format cross-check"
                    .to_string(),
            ));
        }
        for (name, value, line) in locals {
            if value != canonical_value {
                out.push(diag(
                    &referrer.rel_path,
                    line,
                    "version-skew",
                    format!(
                        "`{name}` = {value} disagrees with SNAPSHOT_VERSION = \
                         {canonical_value} in {}",
                        cfg.version_source_file
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic allowlist
// ---------------------------------------------------------------------------

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path the budget applies to.
    pub file: String,
    /// Exact number of panic-capable calls the file is allowed.
    pub allowed: usize,
    /// Why the budget exists (free text, required).
    pub justification: String,
}

/// Parse the panic allowlist: `<path> | <count> | <justification>` per
/// line, `#` comments and blank lines ignored. Malformed lines are errors —
/// a typo must not silently grant a budget of zero.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|').map(str::trim);
        let (Some(file), Some(count), Some(justification)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `<path> | <count> | <justification>`, got {line:?}",
                n + 1
            ));
        };
        let allowed: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: count {count:?} is not a number", n + 1))?;
        if justification.len() < 10 {
            return Err(format!(
                "allowlist line {}: a budget needs a real justification (got {justification:?})",
                n + 1
            ));
        }
        if entries.iter().any(|e: &AllowEntry| e.file == file) {
            return Err(format!(
                "allowlist line {}: duplicate entry for {file}",
                n + 1
            ));
        }
        entries.push(AllowEntry {
            file: file.to_string(),
            allowed,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// Reconcile per-file panic counts against the allowlist. The ratchet is
/// two-sided: a file over its budget fails with every site listed, and a
/// file *under* its budget fails too — the entry must be tightened, so the
/// allowlist can only ever shrink.
pub fn reconcile_allowlist(
    counts: &[(String, usize)],
    sites: &[Diagnostic],
    entries: &[AllowEntry],
    allowlist_file: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (file, found) in counts {
        let allowed = entries
            .iter()
            .find(|e| &e.file == file)
            .map_or(0, |e| e.allowed);
        match found.cmp(&allowed) {
            std::cmp::Ordering::Greater => {
                out.push(diag(
                    allowlist_file,
                    1,
                    "panic-free",
                    format!(
                        "{file}: {found} panic-capable call(s), allowlist budgets {allowed} — \
                         the budget never grows; convert the new sites to typed errors"
                    ),
                ));
                out.extend(sites.iter().filter(|d| &d.file == file).cloned());
            }
            std::cmp::Ordering::Less => {
                out.push(diag(
                    allowlist_file,
                    1,
                    "stale-allowlist",
                    format!(
                        "{file}: {found} panic-capable call(s) but the allowlist still \
                         budgets {allowed} — ratchet the entry down"
                    ),
                ));
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    // Entries for files that no longer exist (or no longer trip the lint at
    // all) with a nonzero budget are caught above via counts==0 only if the
    // file was scanned; a vanished file must not keep a budget either.
    for entry in entries {
        if entry.allowed > 0 && !counts.iter().any(|(f, _)| f == &entry.file) {
            out.push(diag(
                allowlist_file,
                1,
                "stale-allowlist",
                format!(
                    "{}: allowlisted file was not scanned (moved or deleted) — remove the entry",
                    entry.file
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::workspace_config;

    fn parse<'a>(path: &str, src: &'a str) -> SourceFile<'a> {
        SourceFile::parse(path, src)
    }

    #[test]
    fn unsafe_outside_the_allowed_file_is_flagged() {
        let f = parse("crates/dmt-core/src/arena.rs", "unsafe fn bad() {}");
        let mut out = Vec::new();
        lint_unsafe(&f, &workspace_config(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "forbidden-unsafe");
    }

    #[test]
    fn unsafe_in_parallel_rs_needs_a_safety_comment() {
        let cfg = workspace_config();
        let covered = "// SAFETY: argued in the module docs.\nunsafe impl Send for Job {}\n";
        let f = parse("crates/dmt-core/src/parallel.rs", covered);
        let mut out = Vec::new();
        lint_unsafe(&f, &cfg, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let bare = "unsafe impl Send for Job {}\n";
        let f = parse("crates/dmt-core/src/parallel.rs", bare);
        let mut out = Vec::new();
        lint_unsafe(&f, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "missing-safety");
    }

    #[test]
    fn covered_unsafe_item_covers_its_nested_unsafes() {
        let src = "\
// SAFETY: delegates to the system allocator.
unsafe impl GlobalAlloc for A {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 { unsafe { System.alloc(l) } }
}
";
        let f = parse("crates/dmt-core/src/parallel.rs", src);
        let mut out = Vec::new();
        lint_unsafe(&f, &workspace_config(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn spawn_is_confined_to_the_pools() {
        let cfg = workspace_config();
        let f = parse(
            "crates/dmt-eval/src/lib.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        let mut out = Vec::new();
        lint_spawn(&f, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "forbidden-spawn");

        // Test code and the pool module are exempt.
        let f = parse(
            "crates/dmt-eval/src/lib.rs",
            "#[cfg(test)]\nmod tests { fn f() { std::thread::spawn(|| {}); } }",
        );
        let mut out = Vec::new();
        lint_spawn(&f, &cfg, &mut out);
        assert!(out.is_empty());
        let f = parse(
            "crates/dmt-core/src/parallel.rs",
            "fn f() { std::thread::Builder::new().spawn(|| {}); }",
        );
        let mut out = Vec::new();
        lint_spawn(&f, &cfg, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn panic_scan_counts_non_test_sites_only() {
        let src = "\
fn lib() { x.unwrap(); y.expect(\"boom\"); panic!(\"no\"); }
#[cfg(test)]
mod tests { fn t() { z.unwrap(); } }
";
        let f = parse("crates/dmt-core/src/tree.rs", src);
        let mut sites = Vec::new();
        assert_eq!(scan_panics(&f, &mut sites), 3);
        assert!(sites.iter().all(|d| d.lint == "panic-free"));
        // `expect_end` and similar identifiers never match.
        let f = parse(
            "crates/dmt-models/src/wire.rs",
            "fn f() { r.expect_end(); }",
        );
        let mut sites = Vec::new();
        assert_eq!(scan_panics(&f, &mut sites), 0);
    }

    #[test]
    fn time_sources_flagged_only_in_deterministic_crates() {
        let cfg = workspace_config();
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = parse("crates/dmt-core/src/tree.rs", src);
        let mut out = Vec::new();
        lint_time(&f, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "nondeterministic-time");

        let f = parse("crates/dmt-eval/src/prequential.rs", src);
        let mut out = Vec::new();
        lint_time(&f, &cfg, &mut out);
        assert!(out.is_empty(), "dmt-eval may time itself");
    }

    #[test]
    fn hot_path_allocs_flagged_inside_designated_fns_only() {
        let cfg = workspace_config();
        let src = "\
fn gather(&mut self) { self.buf = xs.to_vec(); }
fn cold() -> Vec<f64> { ys.to_vec() }
";
        let f = parse("crates/dmt-core/src/scratch.rs", src);
        let mut out = Vec::new();
        lint_hot_alloc(&f, &cfg, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "hot-path-alloc");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn vanished_hot_fn_is_reported() {
        let cfg = workspace_config();
        let f = parse("crates/dmt-core/src/scratch.rs", "fn renamed() {}");
        let mut out = Vec::new();
        lint_hot_alloc(&f, &cfg, &mut out);
        assert!(out.iter().any(|d| d.lint == "stale-hot-path"));
    }

    #[test]
    fn version_skew_catches_forked_literals() {
        let cfg = workspace_config();
        let source = parse(
            cfg.version_source_file,
            "pub const SNAPSHOT_VERSION: u32 = 2;",
        );
        // A lockstep local constant (the bottom-of-stack wire crate cannot
        // import upward) passes as long as the value agrees.
        let good = parse(
            "crates/dmt-models/src/wire.rs",
            "pub const WIRE_FORMAT_VERSION: u32 = 2;",
        );
        let forked = parse(
            "crates/dmt-serve/src/protocol.rs",
            "use dmt_core::snapshot::SNAPSHOT_VERSION;\nconst FRAME_VERSION: u32 = 3;",
        );
        let mut out = Vec::new();
        lint_versions(&[source, good, forked], &cfg, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "version-skew");
        assert!(out[0].message.contains("FRAME_VERSION"));
    }

    #[test]
    fn allowlist_parses_and_rejects_malformed_lines() {
        let text = "\
# comment
crates/dmt-core/src/tree.rs | 3 | scratch checkout expects are poisoning recovery
";
        let entries = parse_allowlist(text).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].allowed, 3);
        assert!(parse_allowlist("just-a-path").is_err());
        assert!(parse_allowlist("a | nope | some justification here").is_err());
        assert!(parse_allowlist("a | 3 | short").is_err());
        assert!(parse_allowlist(
            "a | 1 | justification long enough\na | 2 | justification long enough"
        )
        .is_err());
    }

    #[test]
    fn allowlist_ratchet_is_two_sided() {
        let entries =
            parse_allowlist("f.rs | 2 | recovery paths audited in PR review").expect("parses");
        let sites = vec![
            diag("f.rs", 10, "panic-free", "`unwrap` …".to_string()),
            diag("f.rs", 20, "panic-free", "`unwrap` …".to_string()),
            diag("f.rs", 30, "panic-free", "`unwrap` …".to_string()),
        ];
        // Over budget: fails and lists the sites.
        let mut out = Vec::new();
        reconcile_allowlist(
            &[("f.rs".to_string(), 3)],
            &sites,
            &entries,
            "allow.txt",
            &mut out,
        );
        assert_eq!(out.len(), 4);
        // At budget: clean.
        let mut out = Vec::new();
        reconcile_allowlist(
            &[("f.rs".to_string(), 2)],
            &sites,
            &entries,
            "allow.txt",
            &mut out,
        );
        assert!(out.is_empty());
        // Under budget: the entry is stale and must shrink.
        let mut out = Vec::new();
        reconcile_allowlist(
            &[("f.rs".to_string(), 1)],
            &sites,
            &entries,
            "allow.txt",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "stale-allowlist");
        // Vanished file with a budget: stale too.
        let mut out = Vec::new();
        reconcile_allowlist(&[], &sites, &entries, "allow.txt", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "stale-allowlist");
    }

    #[test]
    fn int_parser_handles_rust_literal_shapes() {
        assert_eq!(parse_int("2"), Some(2));
        assert_eq!(parse_int("0x1f"), Some(31));
        assert_eq!(parse_int("1_000u32"), Some(1000));
        assert_eq!(parse_int("abc"), None);
    }
}
