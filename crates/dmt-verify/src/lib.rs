//! `dmt-verify` — workspace invariant analyzer.
//!
//! A source-level lint pass over the DMT workspace that enforces the
//! correctness invariants the compiler cannot express across crates:
//! where `unsafe` may live and how it must be documented, where OS threads
//! may be spawned, that library code stays panic-free, that the
//! deterministic learn/predict path never reads wall clocks, that the
//! designated hot functions never allocate, and that the wire-format
//! version constant is referenced — never forked.
//!
//! The analyzer is built on a hand-rolled lexer ([`lexer`]) and a token
//! stream structural index ([`source`]); it deliberately has **zero
//! dependencies** (no `syn`, no registry access) so the static-analysis CI
//! job builds in seconds and can never be broken by model code.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p dmt-verify --bin dmt_lint
//! ```
//!
//! Exit status 0 means every invariant holds; otherwise each violation is
//! printed as `file:line: [lint] message` and the process exits 1.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod source;

use std::path::{Path, PathBuf};

use config::workspace_config;
use lints::Diagnostic;
use source::SourceFile;

/// Whether `rel_path` (workspace-relative, `/` separators) is in scope for
/// the panic-free / spawn lints: library source of a configured crate,
/// excluding `src/bin/` CLI entry points.
fn in_library_scope(rel_path: &str, crates: &[&str]) -> bool {
    let Some(rest) = rel_path.strip_prefix("crates/") else {
        return false;
    };
    let Some((crate_name, inner)) = rest.split_once('/') else {
        return false;
    };
    crates.contains(&crate_name) && inner.starts_with("src/") && !inner.starts_with("src/bin/")
}

/// Recursively collect `crates/*/src/**/*.rs` under `root`, returning
/// `(workspace-relative path, contents)` pairs sorted by path. Vendored
/// shims (`vendor/`), integration tests (`tests/`), and this crate's lint
/// fixtures are outside the scan by construction.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under crates/: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(root, &src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let contents = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push((rel, contents));
        }
    }
    Ok(())
}

/// Run every lint pass over the workspace at `root`. Returns the sorted
/// diagnostics (empty = all invariants hold). `Err` is reserved for
/// environment problems (unreadable tree, malformed allowlist) — those must
/// fail the build just as hard as a lint finding, but with a different
/// message shape.
pub fn run_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = workspace_config();
    let sources = collect_sources(root)?;
    let files: Vec<SourceFile<'_>> = sources
        .iter()
        .map(|(rel, text)| SourceFile::parse(rel, text))
        .collect();

    let mut diagnostics = Vec::new();
    let mut panic_counts: Vec<(String, usize)> = Vec::new();
    let mut panic_sites: Vec<Diagnostic> = Vec::new();
    for file in &files {
        lints::lint_unsafe(file, &cfg, &mut diagnostics);
        lints::lint_time(file, &cfg, &mut diagnostics);
        lints::lint_hot_alloc(file, &cfg, &mut diagnostics);
        if in_library_scope(&file.rel_path, cfg.panic_free_crates) {
            lints::lint_spawn(file, &cfg, &mut diagnostics);
            let found = lints::scan_panics(file, &mut panic_sites);
            if found > 0 {
                panic_counts.push((file.rel_path.clone(), found));
            }
        }
    }
    lints::lint_versions(&files, &cfg, &mut diagnostics);

    let allowlist_path = root.join(cfg.panic_allowlist_file);
    let allowlist_text = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allowlist_path.display())),
    };
    let entries = lints::parse_allowlist(&allowlist_text)?;
    lints::reconcile_allowlist(
        &panic_counts,
        &panic_sites,
        &entries,
        cfg.panic_allowlist_file,
        &mut diagnostics,
    );

    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(diagnostics)
}

/// Per-file panic-capable call counts for the panic-free scope, formatted
/// as ready-to-edit allowlist lines (used by `dmt_lint --dump-panic-counts`
/// to regenerate `panic_allowlist.txt` after a deliberate ratchet-down).
pub fn dump_panic_counts(root: &Path) -> Result<String, String> {
    let cfg = workspace_config();
    let sources = collect_sources(root)?;
    let mut lines = String::new();
    for (rel, text) in &sources {
        if !in_library_scope(rel, cfg.panic_free_crates) {
            continue;
        }
        let file = SourceFile::parse(rel, text);
        let mut sites = Vec::new();
        let found = lints::scan_panics(&file, &mut sites);
        if found > 0 {
            lines.push_str(&format!("{rel} | {found} | TODO: justify this budget\n"));
        }
    }
    Ok(lines)
}

/// Locate the workspace root from this crate's own manifest directory
/// (`crates/dmt-verify` → two levels up). Falls back to walking up from
/// `cwd` to the first directory containing a `Cargo.toml` with a
/// `[workspace]` table.
pub fn workspace_root() -> Result<PathBuf, String> {
    let manifest: &str = env!("CARGO_MANIFEST_DIR");
    let from_manifest = Path::new(manifest).join("..").join("..");
    if from_manifest.join("Cargo.toml").is_file() {
        return Ok(from_manifest);
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_string());
        }
    }
}
