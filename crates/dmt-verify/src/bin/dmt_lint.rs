//! `dmt_lint` — run the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p dmt-verify --bin dmt_lint                      # lint the workspace
//! cargo run -p dmt-verify --bin dmt_lint -- <root>            # lint another tree
//! cargo run -p dmt-verify --bin dmt_lint -- --dump-panic-counts
//! ```
//!
//! Prints one `file:line: [lint] message` line per violation and exits 1 if
//! any were found (or 2 on environment errors such as an unreadable tree or
//! a malformed allowlist).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dump = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in &args {
        match arg.as_str() {
            "--dump-panic-counts" => dump = true,
            "--help" | "-h" => {
                println!(
                    "dmt_lint: workspace invariant analyzer\n\
                     usage: dmt_lint [--dump-panic-counts] [workspace-root]"
                );
                return ExitCode::SUCCESS;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    let root = match root_arg.map(Ok).unwrap_or_else(dmt_verify::workspace_root) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("dmt_lint: {e}");
            return ExitCode::from(2);
        }
    };

    if dump {
        return match dmt_verify::dump_panic_counts(&root) {
            Ok(lines) => {
                print!("{lines}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dmt_lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match dmt_verify::run_workspace(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("dmt_lint: all workspace invariants hold");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            eprintln!("dmt_lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dmt_lint: {e}");
            ExitCode::from(2)
        }
    }
}
