//! Structural view over a lexed file: brace matching, `#[cfg(test)]`
//! regions, function body spans, and the `// SAFETY:` comment convention.
//!
//! Everything here is computed over the token stream of [`crate::lexer`] —
//! no parsing, no AST. The three structural questions the lints need:
//!
//! * **Is this token test-only code?** Items under a `#[cfg(test)]`
//!   attribute (the workspace convention: `#[cfg(test)] mod tests { … }`)
//!   are exempt from the production-code lints.
//! * **Which functions enclose this token?** The hot-path allocation lint
//!   designates `(file, fn)` pairs; a token trips it only inside a
//!   designated function's body.
//! * **Is this `unsafe` justified?** The contiguous `//` comment block
//!   directly above the `unsafe` token's statement (attribute lines like
//!   `#[allow(unsafe_code)]` may sit between) must open with `// SAFETY:`.

use crate::lexer::{tokenize, Token, TokenKind};

/// A function body: the function's name and the token-index range of its
/// `{ … }` body (inclusive of both braces). Nested functions produce nested
/// spans; closures are part of their enclosing function's span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's identifier.
    pub name: String,
    /// Token index of the opening `{`.
    pub body_start: usize,
    /// Token index of the matching `}`.
    pub body_end: usize,
}

/// One lexed and structurally indexed source file.
pub struct SourceFile<'a> {
    /// Workspace-relative path with `/` separators (diagnostic identity).
    pub rel_path: String,
    /// The lexed token stream (comments included).
    pub tokens: Vec<Token<'a>>,
    /// Per token: inside an item gated by `#[cfg(test)]`.
    in_test: Vec<bool>,
    fns: Vec<FnSpan>,
    lines: Vec<&'a str>,
    /// `matching[i] = j` for an opening `{` at token i whose match is at j.
    matching: Vec<Option<usize>>,
}

impl<'a> SourceFile<'a> {
    /// Lex `source` and build the structural indices.
    pub fn parse(rel_path: &str, source: &'a str) -> Self {
        let tokens = tokenize(source);
        let matching = match_braces(&tokens);
        let in_test = mark_test_regions(&tokens, &matching);
        let fns = collect_fns(&tokens, &matching);
        Self {
            rel_path: rel_path.replace('\\', "/"),
            tokens,
            in_test,
            fns,
            lines: source.lines().collect(),
            matching,
        }
    }

    /// Whether the token at `idx` is inside a `#[cfg(test)]`-gated item.
    pub fn is_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// Names of every function whose body contains the token at `idx`
    /// (outermost first).
    pub fn enclosing_fns(&self, idx: usize) -> impl Iterator<Item = &str> {
        self.fns
            .iter()
            .filter(move |f| f.body_start < idx && idx < f.body_end)
            .map(|f| f.name.as_str())
    }

    /// All function spans (for the hot-path lint's existence check: a
    /// designated function that no longer exists is a config error).
    pub fn fn_spans(&self) -> &[FnSpan] {
        &self.fns
    }

    /// The token index of the `}` matching an opening `{` at `idx`.
    pub fn matching_brace(&self, idx: usize) -> Option<usize> {
        self.matching.get(idx).copied().flatten()
    }

    /// 1-based source line text (empty for out-of-range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get((line as usize).saturating_sub(1))
            .copied()
            .unwrap_or("")
    }

    /// The `// SAFETY:` convention: walking up from the line above `line`,
    /// skipping attribute lines, the first thing encountered must be a
    /// contiguous `//` comment block whose **first** line starts with
    /// `// SAFETY:`. Blank lines, code, or a comment block opening with
    /// anything else fail the check.
    pub fn has_safety_comment_above(&self, line: u32) -> bool {
        let mut n = (line as usize).saturating_sub(1); // index of the line above
                                                       // Skip attribute lines between the comment and the unsafe site.
        while n >= 1 {
            let text = self.lines[n - 1].trim_start();
            if text.starts_with("#[") || text.starts_with("#![") {
                n -= 1;
            } else {
                break;
            }
        }
        // Walk to the top of the contiguous comment block.
        let mut saw_comment = false;
        let mut first_comment_line = 0usize;
        while n >= 1 {
            let text = self.lines[n - 1].trim_start();
            if text.starts_with("//") {
                saw_comment = true;
                first_comment_line = n;
                n -= 1;
            } else {
                break;
            }
        }
        saw_comment
            && self.lines[first_comment_line - 1]
                .trim_start()
                .starts_with("// SAFETY:")
    }
}

/// Match `{`/`}` pairs over the non-comment tokens.
fn match_braces(tokens: &[Token<'_>]) -> Vec<Option<usize>> {
    let mut matching = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_comment() {
            continue;
        }
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                matching[open] = Some(i);
            }
        }
    }
    matching
}

/// Mark every token inside an item gated by the exact attribute
/// `#[cfg(test)]`. The item extends to the matching `}` of its first
/// top-level `{`, or to the first top-level `;` (attribute on a `use`).
fn mark_test_regions(tokens: &[Token<'_>], matching: &[Option<usize>]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let at = |k: usize| -> Option<&Token<'_>> { code.get(k).map(|&i| &tokens[i]) };
    for k in 0..code.len() {
        let is_cfg_test = at(k).is_some_and(|t| t.is_punct("#"))
            && at(k + 1).is_some_and(|t| t.is_punct("["))
            && at(k + 2).is_some_and(|t| t.is_ident("cfg"))
            && at(k + 3).is_some_and(|t| t.is_punct("("))
            && at(k + 4).is_some_and(|t| t.is_ident("test"))
            && at(k + 5).is_some_and(|t| t.is_punct(")"))
            && at(k + 6).is_some_and(|t| t.is_punct("]"));
        if !is_cfg_test {
            continue;
        }
        // Find the end of the attached item: first `{` at bracket/paren
        // depth 0 (→ its matching `}`) or a top-level `;`.
        let mut depth = 0i32;
        let mut m = k + 7;
        let end_tok = loop {
            let Some(&i) = code.get(m) else {
                break tokens.len().saturating_sub(1);
            };
            let t = &tokens[i];
            if depth == 0 && t.is_punct("{") {
                break matching[i].unwrap_or(tokens.len() - 1);
            }
            if depth == 0 && t.is_punct(";") {
                break i;
            }
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            }
            m += 1;
        };
        let start_tok = code[k];
        for flag in in_test.iter_mut().take(end_tok + 1).skip(start_tok) {
            *flag = true;
        }
    }
    in_test
}

/// Collect `fn name … { body }` spans. Signatures without a body (trait
/// declarations) and `fn`-pointer types (no identifier after `fn`) are
/// skipped.
fn collect_fns(tokens: &[Token<'_>], matching: &[Option<usize>]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for k in 0..code.len() {
        if !tokens[code[k]].is_ident("fn") {
            continue;
        }
        let Some(&name_idx) = code.get(k + 1) else {
            continue;
        };
        if tokens[name_idx].kind != TokenKind::Ident {
            continue; // `fn(usize) -> usize` pointer type
        }
        // Scan for the body `{` at paren/bracket depth 0; `;` first means a
        // bodyless signature.
        let mut depth = 0i32;
        let mut m = k + 2;
        while let Some(&i) = code.get(m) {
            let t = &tokens[i];
            if depth == 0 && t.is_punct("{") {
                if let Some(end) = matching[i] {
                    fns.push(FnSpan {
                        name: tokens[name_idx].text.to_string(),
                        body_start: i,
                        body_end: end,
                    });
                }
                break;
            }
            if depth == 0 && t.is_punct(";") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            }
            m += 1;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
fn hot(x: &mut [f64]) {
    for v in x.iter_mut() { *v += 1.0; }
}

#[cfg(test)]
mod tests {
    fn helper() { let v: Vec<usize> = (0..3).collect(); }
}

impl Foo {
    fn method(&self) -> usize { self.0.unwrap() }
}
"#;

    #[test]
    fn test_regions_cover_the_gated_mod_only() {
        let f = SourceFile::parse("sample.rs", SAMPLE);
        let collect = f
            .tokens
            .iter()
            .position(|t| t.is_ident("collect"))
            .expect("collect token");
        assert!(f.is_test(collect));
        let unwrap = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(!f.is_test(unwrap));
    }

    #[test]
    fn enclosing_fns_resolve_method_bodies() {
        let f = SourceFile::parse("sample.rs", SAMPLE);
        let unwrap = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        let names: Vec<&str> = f.enclosing_fns(unwrap).collect();
        assert_eq!(names, ["method"]);
        assert_eq!(f.fn_spans().len(), 3);
    }

    #[test]
    fn safety_comment_convention() {
        let src = "\
// SAFETY: the pointer outlives the call.
// Second line of the argument.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

// Not a safety comment.
unsafe fn nope() {}

unsafe fn bare() {}
";
        let f = SourceFile::parse("s.rs", src);
        let unsafe_lines: Vec<u32> = f
            .tokens
            .iter()
            .filter(|t| t.is_ident("unsafe"))
            .map(|t| t.line)
            .collect();
        assert_eq!(unsafe_lines, [4, 7, 9]);
        assert!(f.has_safety_comment_above(4));
        assert!(!f.has_safety_comment_above(7), "wrong opening line");
        assert!(!f.has_safety_comment_above(9), "no comment at all");
    }

    #[test]
    fn cfg_test_on_a_single_fn() {
        let src = "#[cfg(test)]\nfn probe() { x.unwrap(); }\nfn real() { y.unwrap(); }";
        let f = SourceFile::parse("s.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(f.is_test(unwraps[0]));
        assert!(!f.is_test(unwraps[1]));
    }

    #[test]
    fn cfg_debug_assertions_is_not_a_test_region() {
        let src = "#[cfg(debug_assertions)]\nfn checked() { x.unwrap(); }";
        let f = SourceFile::parse("s.rs", src);
        let unwrap = f
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(!f.is_test(unwrap));
    }
}
