//! A minimal Rust lexer: just enough tokenization for source-level lints.
//!
//! The build environment has no crates-registry access, so `syn` (and a real
//! parser) are not options. The lints in this crate only need a faithful
//! token stream — identifiers, punctuation, literals and comments with line
//! numbers — plus the guarantee that nothing inside a string literal or a
//! comment is ever mistaken for code. The lexer therefore handles the full
//! Rust literal surface (raw strings with `#` fences, byte strings, char
//! literals vs. lifetimes, nested block comments) but does not attempt to
//! parse items; structural questions (brace ranges, `#[cfg(test)]` regions,
//! function bodies) are answered over the token stream by [`crate::source`].

/// What a token is, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `fn`, `Vec`, `spawn`, …).
    Ident,
    /// A single punctuation byte (`.`, `:`, `{`, `!`, `#`, …). Multi-byte
    /// operators come through as consecutive tokens; the lints only match
    /// single-byte shapes (`.` before a call, `::` as two `:` tokens).
    Punct,
    /// An integer or float literal (prefix/suffix included, e.g. `0x1f_u32`).
    Number,
    /// A string, raw-string, byte-string or char literal. Contents are
    /// opaque: nothing inside a literal can trip a lint.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `// …` line comment (doc comments included). Contents preserved so
    /// the `// SAFETY:` convention can be checked.
    LineComment,
    /// A `/* … */` block comment (nesting handled). Never consulted for
    /// `SAFETY:` (the workspace convention is line comments), but kept so
    /// the token stream covers the whole file.
    BlockComment,
}

/// One token with its position. `text` borrows from the source.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The token's classification.
    pub kind: TokenKind,
    /// 1-based line of the token's first byte (diagnostics are `file:line`).
    pub line: u32,
    /// The token's source text, borrowed from the input.
    pub text: &'a str,
}

impl<'a> Token<'a> {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenize `source`. Unterminated literals or comments are tolerated (the
/// rest of the file becomes one literal/comment token): the linter must
/// never panic on a source file, it reports over whatever it could lex.
pub fn tokenize(source: &str) -> Vec<Token<'_>> {
    Lexer {
        src: source.as_bytes(),
        text: source,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' | b'b' if self.starts_raw_string() => {
                    self.take_raw_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.take_char_literal();
                    self.push(TokenKind::Literal, start, line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.take_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'"' => {
                    self.take_string();
                    self.push(TokenKind::Literal, start, line);
                }
                b'\'' => {
                    if self.is_lifetime() {
                        self.pos += 1;
                        self.take_ident_tail();
                        self.push(TokenKind::Lifetime, start, line);
                    } else {
                        self.take_char_literal();
                        self.push(TokenKind::Literal, start, line);
                    }
                }
                _ if b == b'_' || b.is_ascii_alphabetic() => {
                    self.take_ident_tail();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.take_number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            line,
            text: &self.text[start..self.pos],
        });
    }

    fn bump_line(&mut self, b: u8) {
        if b == b'\n' {
            self.line += 1;
        }
    }

    fn take_line_comment(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn take_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_line(self.src[self.pos]);
                self.pos += 1;
            }
        }
    }

    /// At `r` or `b`: does a raw (byte) string start here? (`r"`, `r#`,
    /// `br"`, `br#`, `rb` is not Rust.)
    fn starts_raw_string(&self) -> bool {
        let mut i = self.pos;
        if self.src[i] == b'b' {
            i += 1;
        }
        if self.src.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        matches!(self.src.get(i), Some(b'"') | Some(b'#'))
    }

    fn take_raw_string(&mut self) {
        // Skip optional `b`, the `r`, then count `#` fences.
        if self.src[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // r
        let mut fences = 0usize;
        while self.peek(0) == Some(b'#') {
            fences += 1;
            self.pos += 1;
        }
        if self.peek(0) == Some(b'"') {
            self.pos += 1;
        }
        // Scan for `"` followed by `fences` hashes.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            self.bump_line(b);
            self.pos += 1;
            if b == b'"' {
                let mut seen = 0usize;
                while seen < fences && self.peek(0) == Some(b'#') {
                    seen += 1;
                    self.pos += 1;
                }
                if seen == fences {
                    return;
                }
            }
        }
    }

    fn take_string(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            self.bump_line(b);
            self.pos += 1;
            match b {
                b'\\' if self.pos < self.src.len() => {
                    self.bump_line(self.src[self.pos]);
                    self.pos += 1;
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// At a `'`: lifetime (`'a`, `'static`) or char literal (`'x'`, `'\n'`)?
    /// A lifetime is `'` + ident-start NOT followed by a closing `'`.
    fn is_lifetime(&self) -> bool {
        match self.peek(1) {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // `'a'` is a char, `'a ` / `'a,` / `'abc` are lifetimes.
                let mut i = self.pos + 2;
                while self
                    .src
                    .get(i)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    i += 1;
                }
                self.src.get(i) != Some(&b'\'')
            }
            _ => false,
        }
    }

    fn take_char_literal(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            self.bump_line(b);
            self.pos += 1;
            match b {
                b'\\' if self.pos < self.src.len() => {
                    self.pos += 1;
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    fn take_ident_tail(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
    }

    fn take_number(&mut self) {
        // Good enough for lint purposes: digits, prefixes, underscores, one
        // dot, exponent and suffix letters all fold into one Number token.
        while self
            .src
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c == b'.' || c.is_ascii_alphanumeric())
        {
            // Stop on `..` (range) and on a dot followed by an ident start
            // (`0.max(x)` — method call on a literal).
            if self.src[self.pos] == b'.' {
                match self.peek(1) {
                    Some(b'.') => break,
                    Some(c) if c == b'_' || c.is_ascii_alphabetic() => break,
                    _ => {}
                }
            }
            self.pos += 1;
            // A signed exponent (`1.0e-3`): consume the sign so the whole
            // float stays one token.
            if matches!(
                self.src.get(self.pos.wrapping_sub(1)),
                Some(b'e') | Some(b'E')
            ) && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn identifiers_puncts_and_numbers() {
        let t = kinds("let x = foo.unwrap() + 0x1f_u32;");
        assert!(t.contains(&(TokenKind::Ident, "unwrap")));
        assert!(t.contains(&(TokenKind::Punct, ".")));
        assert!(t.contains(&(TokenKind::Number, "0x1f_u32")));
    }

    #[test]
    fn string_contents_are_opaque() {
        let t = kinds(r#"let s = "unsafe { panic!() } // SAFETY: no";"#);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "unsafe"));
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"has \"quotes\" and unsafe\"#; let t = br\"bytes\";";
        let t = kinds(src);
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Literal).count(),
            2
        );
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn comments_keep_text_and_lines() {
        let src = "// SAFETY: fine\nfn f() {}\n/* block\nspans */ fn g() {}";
        let tokens = tokenize(src);
        let comment = &tokens[0];
        assert_eq!(comment.kind, TokenKind::LineComment);
        assert!(comment.text.starts_with("// SAFETY:"));
        assert_eq!(comment.line, 1);
        let g = tokens
            .iter()
            .find(|t| t.is_ident("g"))
            .expect("g tokenized");
        assert_eq!(g.line, 4, "block comment advanced the line counter");
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(t[0].0, TokenKind::BlockComment);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && *s == "fn"));
    }

    #[test]
    fn unterminated_literal_does_not_panic() {
        let t = kinds("let s = \"never closed");
        assert_eq!(t.last().expect("tokens").0, TokenKind::Literal);
    }

    #[test]
    fn float_method_calls_split_at_the_dot() {
        let t = kinds("let x = 0.5; let y = 1.0e-3; let z = 0.max(2); 0..4");
        assert!(t.contains(&(TokenKind::Number, "0.5")));
        assert!(t.contains(&(TokenKind::Number, "1.0e-3")));
        assert!(t.contains(&(TokenKind::Ident, "max")));
        assert!(t.contains(&(TokenKind::Number, "0")));
    }
}
