//! The workspace invariant policy: which files may do what.
//!
//! This is deliberately **data**, not clever detection — the point of the
//! analyzer is that loosening any invariant requires editing this file (or
//! the panic allowlist) in the same diff, where a reviewer sees it.

/// Lint policy for the DMT workspace. Paths are workspace-relative with
/// `/` separators.
pub struct WorkspaceConfig {
    /// Files allowed to contain the `unsafe` keyword at all. Every `unsafe`
    /// in them must still carry a `// SAFETY:` comment (see
    /// [`crate::lints`]). The workspace ships exactly one unsafe hand-off:
    /// the worker pool's lifetime-erased job slot.
    pub unsafe_allowed_files: &'static [&'static str],
    /// Files allowed to spawn OS threads. Thread creation is confined to the
    /// two long-lived pools (the `WorkerPool` residents and the serve
    /// plane's per-core acceptors); ad-hoc `thread::spawn` anywhere else is
    /// an unmanaged thread the shutdown protocols do not know about.
    pub spawn_allowed_files: &'static [&'static str],
    /// Crate directory names (under `crates/`) whose library source must be
    /// free of `unwrap()`/`expect()`/`panic!` outside `#[cfg(test)]`,
    /// except for the budgeted entries in the panic allowlist.
    pub panic_free_crates: &'static [&'static str],
    /// Crates on the deterministic learn/predict path: any `Instant` /
    /// `SystemTime` reference would smuggle wall-clock nondeterminism into
    /// results the paper reproduction pins bit-identically.
    pub deterministic_crates: &'static [&'static str],
    /// `(file, functions)` designations of the allocation-free hot path
    /// (the source-level twin of `tests/integration_alloc.rs`): inside
    /// these function bodies, `Vec::new` / `vec![…]` / `.to_vec()` /
    /// `.collect()` / `Box::new` are flagged. A designated function that no
    /// longer exists is itself an error — the table cannot silently rot.
    pub hot_path_fns: &'static [(&'static str, &'static [&'static str])],
    /// The file owning the canonical wire-format version constant
    /// (`SNAPSHOT_VERSION`), and the files that must reference it instead
    /// of forking their own literal.
    pub version_source_file: &'static str,
    /// Files that must stay in the wire-format version cross-check: each
    /// either references `SNAPSHOT_VERSION` or declares a lockstep
    /// `…VERSION` constant whose literal must agree.
    pub version_referrer_files: &'static [&'static str],
    /// Workspace-relative path of the panic allowlist (see
    /// [`crate::lints::parse_allowlist`]).
    pub panic_allowlist_file: &'static str,
}

/// The committed policy for this workspace.
pub fn workspace_config() -> WorkspaceConfig {
    WorkspaceConfig {
        unsafe_allowed_files: &["crates/dmt-core/src/parallel.rs"],
        spawn_allowed_files: &[
            "crates/dmt-core/src/parallel.rs",
            "crates/dmt-serve/src/server.rs",
        ],
        panic_free_crates: &[
            "dmt",
            "dmt-core",
            "dmt-models",
            "dmt-stream",
            "dmt-drift",
            "dmt-baselines",
            "dmt-ensembles",
            "dmt-eval",
            "dmt-serve",
            "dmt-verify",
        ],
        deterministic_crates: &[
            "dmt",
            "dmt-core",
            "dmt-models",
            "dmt-stream",
            "dmt-drift",
            "dmt-baselines",
            "dmt-ensembles",
        ],
        hot_path_fns: &[
            (
                "crates/dmt-models/src/linalg.rs",
                &[
                    "dot",
                    "axpy",
                    "add_assign",
                    "gemv_into",
                    "gemv_bias_into",
                    "sub_into",
                    "sub_norm_sq",
                    "norm_sq",
                    "scale",
                    "sigmoid",
                    "softmax_in_place",
                    "softmax_into",
                ],
            ),
            (
                "crates/dmt-models/src/glm.rs",
                &[
                    "predict_proba_into",
                    "loss_and_gradient_into",
                    "sgd_step_into",
                    "predict_proba_batch_into",
                    "loss_and_gradient_batch_into",
                    "learn_batch_into",
                ],
            ),
            ("crates/dmt-core/src/scratch.rs", &["gather"]),
            (
                "crates/dmt-core/src/node.rs",
                &[
                    "update_with_batch_indexed",
                    "propose_and_accumulate",
                    "add_bucket_stats",
                    "manage_candidate_pool",
                    "partition_indices",
                    "learn_at",
                ],
            ),
            (
                "crates/dmt-core/src/candidate.rs",
                &["accumulate", "accumulate_batch"],
            ),
        ],
        version_source_file: "crates/dmt-core/src/snapshot.rs",
        version_referrer_files: &[
            "crates/dmt-models/src/wire.rs",
            "crates/dmt-serve/src/protocol.rs",
        ],
        panic_allowlist_file: "crates/dmt-verify/panic_allowlist.txt",
    }
}
