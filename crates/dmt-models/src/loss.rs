//! Loss functions for online learning.
//!
//! The Dynamic Model Tree uses the negative log-likelihood (NLL) as its loss
//! (§V-B of the paper): with a well-fitting simple model, the likelihood
//! `P(Y_t | X_t, θ_t)` approximates the active data concept, so changes in the
//! NLL-based gains (3)–(5) can be attributed to (real) concept drift.

use crate::linalg::clamp_proba;

/// Negative log-likelihood of a single categorical prediction.
///
/// `proba` is the predicted class-probability vector and `y` the true class
/// index. Probabilities are clamped so the result is always finite.
#[inline]
pub fn nll_single(proba: &[f64], y: usize) -> f64 {
    let p = proba.get(y).copied().unwrap_or(0.0);
    -clamp_proba(p).ln()
}

/// Sum of negative log-likelihoods over a batch of predictions.
pub fn nll_batch(probas: &[Vec<f64>], ys: &[usize]) -> f64 {
    probas
        .iter()
        .zip(ys.iter())
        .map(|(p, &y)| nll_single(p, y))
        .sum()
}

/// Zero-one loss (misclassification indicator).
#[inline]
pub fn zero_one(pred: usize, y: usize) -> f64 {
    if pred == y {
        0.0
    } else {
        1.0
    }
}

/// Brier score (mean squared error of the probability vector against the
/// one-hot target) for a single prediction. Provided for diagnostics and the
/// extension experiments; the paper itself uses the NLL.
pub fn brier_single(proba: &[f64], y: usize) -> f64 {
    let mut acc = 0.0;
    for (i, &p) in proba.iter().enumerate() {
        let target = if i == y { 1.0 } else { 0.0 };
        acc += (p - target) * (p - target);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nll_of_confident_correct_prediction_is_small() {
        let loss = nll_single(&[0.01, 0.99], 1);
        assert!(loss < 0.02);
    }

    #[test]
    fn nll_of_confident_wrong_prediction_is_large() {
        let loss = nll_single(&[0.99, 0.01], 1);
        assert!(loss > 4.0);
    }

    #[test]
    fn nll_is_finite_even_for_zero_probability() {
        let loss = nll_single(&[1.0, 0.0], 1);
        assert!(loss.is_finite());
        assert!(loss > 30.0);
    }

    #[test]
    fn nll_out_of_range_class_is_treated_as_zero_probability() {
        let loss = nll_single(&[0.5, 0.5], 7);
        assert!(loss.is_finite());
    }

    #[test]
    fn nll_batch_sums_individuals() {
        let probas = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let ys = vec![0, 1];
        let total = nll_batch(&probas, &ys);
        let expected = nll_single(&probas[0], 0) + nll_single(&probas[1], 1);
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_one_loss() {
        assert_eq!(zero_one(1, 1), 0.0);
        assert_eq!(zero_one(0, 1), 1.0);
    }

    #[test]
    fn brier_is_zero_for_perfect_prediction() {
        assert!(brier_single(&[0.0, 1.0, 0.0], 1) < 1e-12);
        assert!((brier_single(&[1.0, 0.0], 1) - 2.0).abs() < 1e-12);
    }
}
