//! Multinomial logistic regression (softmax model) trained by constant-rate
//! SGD.
//!
//! This is the simple model the paper proposes for categorical targets with
//! more than two classes (§V-A). The parameter vector is laid out class-major:
//! `[w_{0,1}, ..., w_{0,m}, b_0, w_{1,1}, ..., w_{1,m}, b_1, ...]`, so
//! `num_params = c * (m + 1)`.

use rand::Rng;
use rand::SeedableRng;

use crate::linalg::{axpy, clamp_proba, dot, gemv_bias_into, softmax_in_place, MatMut, MatRef};
use crate::wire::{self, Reader, WireError, Writer};
use crate::{BatchMode, Rows, SimpleModel};

/// Multinomial logistic-regression model with per-class intercepts.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxModel {
    /// Flattened class-major parameters, `c * (m + 1)` entries.
    params: Vec<f64>,
    num_features: usize,
    num_classes: usize,
    seen: u64,
}

impl SoftmaxModel {
    /// Create a model with all parameters initialised to zero.
    pub fn new_zeros(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "softmax needs at least two classes");
        Self {
            params: vec![0.0; num_classes * (num_features + 1)],
            num_features,
            num_classes,
            seen: 0,
        }
    }

    /// Heap bytes held by the parameter vector (capacity-based; see
    /// [`crate::memory::MemoryUsage`]).
    pub(crate) fn params_heap_bytes(&self) -> usize {
        crate::memory::vec_bytes(&self.params)
    }

    /// Create a model with small random initial weights in `[-0.1, 0.1]`.
    pub fn new_random(num_features: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "softmax needs at least two classes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = (0..num_classes * (num_features + 1))
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        Self {
            params,
            num_features,
            num_classes,
            seen: 0,
        }
    }

    /// Create a child model warm-started with the parameters of a parent.
    pub fn warm_start_from(parent: &Self) -> Self {
        Self {
            params: parent.params.clone(),
            num_features: parent.num_features,
            num_classes: parent.num_classes,
            seen: 0,
        }
    }

    /// Per-class linear scores (logits) for one instance.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_classes];
        self.logits_into(x, &mut out);
        out
    }

    /// Per-class linear scores written into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics when `out.len() != num_classes` — a short buffer would silently
    /// drop classes, so the length contract is enforced in release builds too.
    pub fn logits_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.num_features);
        assert_eq!(out.len(), self.num_classes, "logits_into: buffer length");
        let stride = self.num_features + 1;
        gemv_bias_into(MatRef::new(&self.params, self.num_classes, stride), x, out);
    }

    /// Serialise the full model state (shape, observation counter, raw
    /// parameter bits) through `w`; the inverse of [`SoftmaxModel::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.num_features);
        w.put_usize(self.num_classes);
        w.put_u64(self.seen);
        w.put_f64_slice(&self.params);
    }

    /// Reconstruct a model from [`SoftmaxModel::encode`] output, validating
    /// the class count and the parameter count against the announced shape.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num_features = r.get_usize()?;
        let num_classes = r.get_usize()?;
        let seen = r.get_u64()?;
        let params = r.get_f64_vec()?;
        if num_classes < 2 {
            return Err(wire::invalid(format!(
                "softmax model needs at least two classes, got {num_classes}"
            )));
        }
        let expected = num_classes
            .checked_mul(num_features + 1)
            .ok_or_else(|| wire::invalid("softmax parameter count overflows"))?;
        if params.len() != expected {
            return Err(wire::invalid(format!(
                "softmax model of shape {num_classes}×({num_features}+1) needs {expected} \
                 parameters, got {}",
                params.len()
            )));
        }
        Ok(Self {
            params,
            num_features,
            num_classes,
            seen,
        })
    }

    /// Per-row softmax probabilities (written into `class_buf`) and negative
    /// log-likelihood at the current parameters. Shared by the scalar and
    /// batched gradient paths so that both stay bit-identical.
    #[inline]
    fn row_loss_probs(&self, x: &[f64], y: usize, class_buf: &mut [f64]) -> f64 {
        self.predict_proba_into(x, class_buf);
        let p_true = class_buf.get(y).copied().unwrap_or(0.0);
        -clamp_proba(p_true).ln()
    }

    /// Weight vector of a particular class (excluding the intercept).
    pub fn class_weights(&self, class: usize) -> &[f64] {
        let stride = self.num_features + 1;
        &self.params[class * stride..class * stride + self.num_features]
    }

    /// Intercept of a particular class.
    pub fn class_bias(&self, class: usize) -> f64 {
        let stride = self.num_features + 1;
        self.params[class * stride + self.num_features]
    }
}

impl SimpleModel for SoftmaxModel {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_features(&self) -> usize {
        self.num_features
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        self.logits_into(x, out);
        softmax_in_place(out);
    }

    fn predict(&self, x: &[f64]) -> usize {
        // Softmax is monotone in the logits, so the argmax over the raw
        // scores avoids both the exponentiation and any allocation. (In the
        // measure-zero case where two distinct logits round to bitwise-equal
        // probabilities after exp, this picks the truly larger score while
        // argmax-over-probabilities would pick the lower index.)
        debug_assert_eq!(x.len(), self.num_features);
        let stride = self.num_features + 1;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.num_classes {
            let block = &self.params[c * stride..(c + 1) * stride];
            let score = dot(&block[..self.num_features], x) + block[self.num_features];
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.len(), ys.len());
        debug_assert_eq!(grad.len(), self.params.len());
        let m = self.num_features;
        let stride = m + 1;
        let mut loss = 0.0;
        grad.fill(0.0);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            loss += self.row_loss_probs(x, y, class_buf);
            for c in 0..self.num_classes {
                let target = if c == y { 1.0 } else { 0.0 };
                let residual = class_buf[c] - target;
                let block = &mut grad[c * stride..(c + 1) * stride];
                axpy(residual, x, &mut block[..m]);
                block[m] += residual;
            }
        }
        loss
    }

    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let loss = self.loss_and_gradient_into(xs, ys, grad_buf, class_buf);
        let step = learning_rate / n as f64;
        for (p, g) in self.params.iter_mut().zip(grad_buf.iter()) {
            *p -= step * g;
        }
        self.seen += n as u64;
        loss
    }

    fn predict_proba_batch_into(&self, xs: MatRef<'_>, out: &mut [f64]) {
        let c = self.num_classes;
        debug_assert_eq!(out.len(), xs.rows() * c, "batch buffer length");
        let stride = self.num_features + 1;
        let w = MatRef::new(&self.params, c, stride);
        for (x, out_row) in xs.row_iter().zip(out.chunks_exact_mut(c)) {
            gemv_bias_into(w, x, out_row);
            softmax_in_place(out_row);
        }
    }

    fn loss_and_gradient_batch_into(
        &self,
        xs: MatRef<'_>,
        ys: &[usize],
        losses: &mut [f64],
        mut grads: MatMut<'_>,
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        debug_assert_eq!(losses.len(), xs.rows());
        debug_assert_eq!(grads.rows(), xs.rows());
        debug_assert_eq!(grads.cols(), self.params.len());
        let m = self.num_features;
        let stride = m + 1;
        let mut total = 0.0;
        for i in 0..xs.rows() {
            let x = xs.row(i);
            let y = ys[i];
            let row_loss = self.row_loss_probs(x, y, class_buf);
            losses[i] = row_loss;
            total += row_loss;
            let g = grads.row_mut(i);
            for c in 0..self.num_classes {
                let target = if c == y { 1.0 } else { 0.0 };
                let residual = class_buf[c] - target;
                let block = &mut g[c * stride..(c + 1) * stride];
                for (gj, &xj) in block[..m].iter_mut().zip(x.iter()) {
                    *gj = residual * xj;
                }
                block[m] = residual;
            }
        }
        total
    }

    fn learn_batch_into(
        &mut self,
        xs: MatRef<'_>,
        ys: &[usize],
        learning_rate: f64,
        mode: BatchMode,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        let b = xs.rows();
        if b == 0 {
            return 0.0;
        }
        match mode {
            BatchMode::Deterministic => {
                let mut total = 0.0;
                for (x, &y) in xs.row_iter().zip(ys.iter()) {
                    total += self.sgd_step_into(&[x], &[y], learning_rate, grad_buf, class_buf);
                }
                total
            }
            BatchMode::Batched { window } => {
                let window = window.max(1);
                let m = self.num_features;
                let stride = m + 1;
                let mut total = 0.0;
                let mut start = 0;
                while start < b {
                    let end = (start + window).min(b);
                    grad_buf.fill(0.0);
                    for (x, &y) in (start..end).map(|i| xs.row(i)).zip(ys[start..end].iter()) {
                        total += self.row_loss_probs(x, y, class_buf);
                        for c in 0..self.num_classes {
                            let target = if c == y { 1.0 } else { 0.0 };
                            let residual = class_buf[c] - target;
                            let block = &mut grad_buf[c * stride..(c + 1) * stride];
                            axpy(residual, x, &mut block[..m]);
                            block[m] += residual;
                        }
                    }
                    // One summed-gradient step per window: the first-order
                    // equivalent of `end - start` per-instance steps.
                    axpy(-learning_rate, grad_buf, &mut self.params);
                    start = end;
                }
                self.seen += b as u64;
                total
            }
        }
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::argmax;

    /// A 3-class problem with Gaussian-free deterministic structure:
    /// class = index of the largest of three feature values.
    fn three_class_batch(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i * 13) % 31) as f64 / 31.0;
            let b = ((i * 7) % 29) as f64 / 29.0;
            let c = ((i * 11) % 23) as f64 / 23.0;
            let x = vec![a, b, c];
            ys.push(argmax(&x));
            xs.push(x);
        }
        (xs, ys)
    }

    fn as_rows(xs: &[Vec<f64>]) -> Vec<&[f64]> {
        xs.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let _ = SoftmaxModel::new_zeros(3, 1);
    }

    #[test]
    fn zero_model_predicts_uniform() {
        let model = SoftmaxModel::new_zeros(4, 3);
        let p = model.predict_proba(&[0.1, 0.2, 0.3, 0.4]);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn param_count_is_c_times_m_plus_one() {
        let model = SoftmaxModel::new_zeros(10, 4);
        assert_eq!(model.num_params(), 4 * 11);
        assert_eq!(model.num_classes(), 4);
        assert_eq!(model.num_features(), 10);
    }

    #[test]
    fn warm_start_copies_parent() {
        let parent = SoftmaxModel::new_random(3, 3, 11);
        let child = SoftmaxModel::warm_start_from(&parent);
        assert_eq!(child.params(), parent.params());
        assert_eq!(child.observations_seen(), 0);
    }

    #[test]
    fn sgd_reduces_loss_on_three_class_problem() {
        let (xs, ys) = three_class_batch(300);
        let rows = as_rows(&xs);
        let mut model = SoftmaxModel::new_zeros(3, 3);
        let (initial, _) = model.loss_and_gradient(&rows, &ys);
        for _ in 0..400 {
            model.sgd_step(&rows, &ys, 0.5);
        }
        let (fin, _) = model.loss_and_gradient(&rows, &ys);
        assert!(fin < initial * 0.7, "loss {initial} -> {fin}");
    }

    #[test]
    fn trained_model_beats_chance_substantially() {
        let (xs, ys) = three_class_batch(400);
        let rows = as_rows(&xs);
        let mut model = SoftmaxModel::new_zeros(3, 3);
        for _ in 0..600 {
            model.sgd_step(&rows, &ys, 0.5);
        }
        let correct = rows
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        let accuracy = correct as f64 / rows.len() as f64;
        assert!(accuracy > 0.7, "accuracy {accuracy}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (xs, ys) = three_class_batch(15);
        let rows = as_rows(&xs);
        let mut model = SoftmaxModel::new_random(3, 3, 21);
        let (_, grad) = model.loss_and_gradient(&rows, &ys);
        let h = 1e-6;
        #[allow(clippy::needless_range_loop)] // `i` indexes params and grad in lockstep
        for i in 0..model.num_params() {
            let orig = model.params()[i];
            model.params_mut()[i] = orig + h;
            let (lp, _) = model.loss_and_gradient(&rows, &ys);
            model.params_mut()[i] = orig - h;
            let (lm, _) = model.loss_and_gradient(&rows, &ys);
            model.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn proba_sums_to_one_after_training() {
        let (xs, ys) = three_class_batch(100);
        let rows = as_rows(&xs);
        let mut model = SoftmaxModel::new_random(3, 3, 2);
        for _ in 0..50 {
            model.sgd_step(&rows, &ys, 0.1);
        }
        let p = model.predict_proba(&[0.9, 0.1, 0.2]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut model = SoftmaxModel::new_random(3, 4, 9);
        let before = model.params().to_vec();
        assert_eq!(model.sgd_step(&[], &[], 0.1), 0.0);
        assert_eq!(model.params(), before.as_slice());
    }

    #[test]
    fn class_weight_views_have_correct_length() {
        let model = SoftmaxModel::new_random(5, 3, 1);
        for c in 0..3 {
            assert_eq!(model.class_weights(c).len(), 5);
            let _ = model.class_bias(c);
        }
    }

    #[test]
    fn out_of_range_label_is_finite_loss() {
        let model = SoftmaxModel::new_zeros(2, 2);
        let x: &[f64] = &[0.5, 0.5];
        let (loss, _) = model.loss_and_gradient(&[x], &[5]);
        assert!(loss.is_finite());
    }
}
