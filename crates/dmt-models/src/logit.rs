//! Binary logistic regression (logit model) trained by constant-rate SGD.
//!
//! This is the simple model the paper proposes for binary targets (§V-A).
//! The parameter vector is laid out as `[w_1, ..., w_m, b]` (weights followed
//! by the intercept), so `num_params = m + 1`.

use rand::Rng;
use rand::SeedableRng;

use crate::linalg::{axpy, dot, log1p_exp, sigmoid, MatMut, MatRef};
use crate::wire::{self, Reader, WireError, Writer};
use crate::{BatchMode, Rows, SimpleModel};

/// Binary logistic-regression model with an intercept term.
#[derive(Debug, Clone, PartialEq)]
pub struct LogitModel {
    /// Flattened parameters: `m` weights followed by a single bias term.
    params: Vec<f64>,
    /// Number of input features.
    num_features: usize,
    /// Number of observations used for training so far.
    seen: u64,
}

impl LogitModel {
    /// Create a model with all parameters initialised to zero.
    pub fn new_zeros(num_features: usize) -> Self {
        Self {
            params: vec![0.0; num_features + 1],
            num_features,
            seen: 0,
        }
    }

    /// Heap bytes held by the parameter vector (capacity-based; see
    /// [`crate::memory::MemoryUsage`]).
    pub(crate) fn params_heap_bytes(&self) -> usize {
        crate::memory::vec_bytes(&self.params)
    }

    /// Create a model with small random initial weights drawn uniformly from
    /// `[-0.1, 0.1]`, matching the paper's "random initial weights" remark for
    /// the root node (§IV-E).
    pub fn new_random(num_features: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = (0..num_features + 1)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        Self {
            params,
            num_features,
            seen: 0,
        }
    }

    /// Create a zero-feature, zero-parameter placeholder model.
    ///
    /// Performs **no** heap allocation (the parameter vector is empty) — used
    /// by `dmt-core`'s arena to backfill node payloads that were moved into a
    /// worker arena for a parallel subtree update. A placeholder must never
    /// be asked to predict or learn.
    pub fn placeholder() -> Self {
        Self {
            params: Vec::new(),
            num_features: 0,
            seen: 0,
        }
    }

    /// Create a child model warm-started with the parameters of a parent model
    /// (all non-root nodes of a Dynamic Model Tree are initialised this way).
    pub fn warm_start_from(parent: &Self) -> Self {
        Self {
            params: parent.params.clone(),
            num_features: parent.num_features,
            seen: 0,
        }
    }

    /// Raw linear score `w·x + b` for one instance.
    #[inline]
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.num_features);
        dot(&self.params[..self.num_features], x) + self.params[self.num_features]
    }

    /// Probability of the positive class (class index 1).
    #[inline]
    pub fn proba_positive(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_function(x))
    }

    /// Weight vector (excluding the bias), useful for feature-based
    /// explanations of a leaf subgroup.
    pub fn weights(&self) -> &[f64] {
        &self.params[..self.num_features]
    }

    /// Intercept term.
    pub fn bias(&self) -> f64 {
        self.params[self.num_features]
    }

    /// Serialise the full model state (shape, observation counter, raw
    /// parameter bits) through `w`; the inverse of [`LogitModel::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.num_features);
        w.put_u64(self.seen);
        w.put_f64_slice(&self.params);
    }

    /// Reconstruct a model from [`LogitModel::encode`] output, validating the
    /// parameter count against the announced feature count so a hostile
    /// buffer cannot build a model whose views go out of bounds.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num_features = r.get_usize()?;
        let seen = r.get_u64()?;
        let params = r.get_f64_vec()?;
        if params.len() != num_features + 1 {
            return Err(wire::invalid(format!(
                "logit model with {num_features} features needs {} parameters, got {}",
                num_features + 1,
                params.len()
            )));
        }
        Ok(Self {
            params,
            num_features,
            seen,
        })
    }

    /// Per-row negative log-likelihood and residual `σ(z) − y` at the current
    /// parameters. Shared by the scalar and batched paths so that both stay
    /// bit-identical.
    #[inline]
    fn row_loss_residual(&self, x: &[f64], y: usize) -> (f64, f64) {
        let z = self.decision_function(x);
        let y_f = if y >= 1 { 1.0 } else { 0.0 };
        // NLL of the Bernoulli likelihood: log(1 + e^z) - y*z.
        (log1p_exp(z) - y_f * z, sigmoid(z) - y_f)
    }
}

impl SimpleModel for LogitModel {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn num_features(&self) -> usize {
        self.num_features
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), 2, "predict_proba_into: buffer length");
        let p = self.proba_positive(x);
        out[0] = 1.0 - p;
        out[1] = p;
    }

    fn predict(&self, x: &[f64]) -> usize {
        // argmax([1-p, p]) == 1 exactly when p > 0.5 (ties resolve toward
        // class 0); computing it through the same rounded sigmoid keeps this
        // bit-compatible with `predict_proba` while never allocating.
        usize::from(self.proba_positive(x) > 0.5)
    }

    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        _class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.len(), ys.len());
        debug_assert_eq!(grad.len(), self.params.len());
        let m = self.num_features;
        let mut loss = 0.0;
        grad.fill(0.0);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let (row_loss, residual) = self.row_loss_residual(x, y);
            loss += row_loss;
            axpy(residual, x, &mut grad[..m]);
            grad[m] += residual;
        }
        loss
    }

    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let loss = self.loss_and_gradient_into(xs, ys, grad_buf, class_buf);
        // Mean-gradient step: a constant learning rate over the batch mean
        // keeps the step size independent of the batch size (eq. 6 uses λ/|C|).
        let step = learning_rate / n as f64;
        for (p, g) in self.params.iter_mut().zip(grad_buf.iter()) {
            *p -= step * g;
        }
        self.seen += n as u64;
        loss
    }

    fn predict_proba_batch_into(&self, xs: MatRef<'_>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), xs.rows() * 2, "batch buffer length");
        for (x, out_row) in xs.row_iter().zip(out.chunks_exact_mut(2)) {
            let p = self.proba_positive(x);
            out_row[0] = 1.0 - p;
            out_row[1] = p;
        }
    }

    fn loss_and_gradient_batch_into(
        &self,
        xs: MatRef<'_>,
        ys: &[usize],
        losses: &mut [f64],
        mut grads: MatMut<'_>,
        _class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        debug_assert_eq!(losses.len(), xs.rows());
        debug_assert_eq!(grads.rows(), xs.rows());
        debug_assert_eq!(grads.cols(), self.params.len());
        let m = self.num_features;
        let mut total = 0.0;
        for i in 0..xs.rows() {
            let x = xs.row(i);
            let (row_loss, residual) = self.row_loss_residual(x, ys[i]);
            losses[i] = row_loss;
            total += row_loss;
            let g = grads.row_mut(i);
            for (gj, &xj) in g[..m].iter_mut().zip(x.iter()) {
                *gj = residual * xj;
            }
            g[m] = residual;
        }
        total
    }

    fn learn_batch_into(
        &mut self,
        xs: MatRef<'_>,
        ys: &[usize],
        learning_rate: f64,
        mode: BatchMode,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        let b = xs.rows();
        if b == 0 {
            return 0.0;
        }
        match mode {
            BatchMode::Deterministic => {
                let mut total = 0.0;
                for (x, &y) in xs.row_iter().zip(ys.iter()) {
                    total += self.sgd_step_into(&[x], &[y], learning_rate, grad_buf, class_buf);
                }
                total
            }
            BatchMode::Batched { window } => {
                let window = window.max(1);
                let m = self.num_features;
                let mut total = 0.0;
                let mut start = 0;
                while start < b {
                    let end = (start + window).min(b);
                    grad_buf.fill(0.0);
                    for (x, &y) in (start..end).map(|i| xs.row(i)).zip(ys[start..end].iter()) {
                        let (row_loss, residual) = self.row_loss_residual(x, y);
                        total += row_loss;
                        axpy(residual, x, &mut grad_buf[..m]);
                        grad_buf[m] += residual;
                    }
                    // One summed-gradient step per window: the first-order
                    // equivalent of `end - start` per-instance steps.
                    axpy(-learning_rate, grad_buf, &mut self.params);
                    start = end;
                }
                self.seen += b as u64;
                total
            }
        }
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a linearly separable 2-feature batch: class 1 iff x0 + x1 > 1.
    fn separable_batch(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 17) as f64 / 17.0;
            let b = ((i * 7) % 13) as f64 / 13.0;
            xs.push(vec![a, b]);
            ys.push(usize::from(a + b > 1.0));
        }
        (xs, ys)
    }

    fn as_rows(xs: &[Vec<f64>]) -> Vec<&[f64]> {
        xs.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn zero_model_predicts_half() {
        let model = LogitModel::new_zeros(3);
        let p = model.predict_proba(&[0.2, 0.4, 0.6]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_init_is_deterministic_per_seed() {
        let a = LogitModel::new_random(5, 42);
        let b = LogitModel::new_random(5, 42);
        let c = LogitModel::new_random(5, 43);
        assert_eq!(a.params(), b.params());
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn warm_start_copies_parent_parameters() {
        let mut parent = LogitModel::new_random(4, 1);
        parent.params_mut()[0] = 3.5;
        let child = LogitModel::warm_start_from(&parent);
        assert_eq!(child.params(), parent.params());
        assert_eq!(child.observations_seen(), 0);
    }

    #[test]
    fn sgd_reduces_loss_on_separable_data() {
        let (xs, ys) = separable_batch(200);
        let rows = as_rows(&xs);
        let mut model = LogitModel::new_zeros(2);
        let (initial_loss, _) = model.loss_and_gradient(&rows, &ys);
        for _ in 0..300 {
            model.sgd_step(&rows, &ys, 0.5);
        }
        let (final_loss, _) = model.loss_and_gradient(&rows, &ys);
        assert!(
            final_loss < initial_loss * 0.5,
            "loss did not decrease: {initial_loss} -> {final_loss}"
        );
    }

    #[test]
    fn trained_model_classifies_separable_data_well() {
        let (xs, ys) = separable_batch(300);
        let rows = as_rows(&xs);
        let mut model = LogitModel::new_zeros(2);
        for _ in 0..500 {
            model.sgd_step(&rows, &ys, 0.5);
        }
        let correct = rows
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(
            correct as f64 / rows.len() as f64 > 0.9,
            "accuracy too low: {correct}/{}",
            rows.len()
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (xs, ys) = separable_batch(20);
        let rows = as_rows(&xs);
        let mut model = LogitModel::new_random(2, 7);
        let (_, grad) = model.loss_and_gradient(&rows, &ys);
        let h = 1e-6;
        #[allow(clippy::needless_range_loop)] // `i` indexes params and grad in lockstep
        for i in 0..model.num_params() {
            let orig = model.params()[i];
            model.params_mut()[i] = orig + h;
            let (lp, _) = model.loss_and_gradient(&rows, &ys);
            model.params_mut()[i] = orig - h;
            let (lm, _) = model.loss_and_gradient(&rows, &ys);
            model.params_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn loss_is_sum_not_mean() {
        let (xs, ys) = separable_batch(10);
        let rows = as_rows(&xs);
        let model = LogitModel::new_random(2, 3);
        let (full, _) = model.loss_and_gradient(&rows, &ys);
        let mut acc = 0.0;
        for (x, &y) in rows.iter().zip(ys.iter()) {
            let (one, _) = model.loss_and_gradient(&[x], &[y]);
            acc += one;
        }
        assert!((full - acc).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut model = LogitModel::new_random(2, 5);
        let before = model.params().to_vec();
        let loss = model.sgd_step(&[], &[], 0.1);
        assert_eq!(loss, 0.0);
        assert_eq!(model.params(), before.as_slice());
        assert_eq!(model.observations_seen(), 0);
    }

    #[test]
    fn observations_seen_accumulates() {
        let (xs, ys) = separable_batch(30);
        let rows = as_rows(&xs);
        let mut model = LogitModel::new_zeros(2);
        model.sgd_step(&rows[..10], &ys[..10], 0.05);
        model.sgd_step(&rows[10..30], &ys[10..30], 0.05);
        assert_eq!(model.observations_seen(), 30);
    }

    #[test]
    fn weights_and_bias_views() {
        let mut model = LogitModel::new_zeros(2);
        model.params_mut()[0] = 1.0;
        model.params_mut()[1] = 2.0;
        model.params_mut()[2] = -0.5;
        assert_eq!(model.weights(), &[1.0, 2.0]);
        assert_eq!(model.bias(), -0.5);
        assert!((model.decision_function(&[1.0, 1.0]) - 2.5).abs() < 1e-12);
    }
}
