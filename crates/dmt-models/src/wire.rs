//! Bounds-checked binary encoding primitives shared by every snapshot codec
//! in the workspace.
//!
//! The persistence layer (`dmt-core::snapshot`, the ensemble save/load paths)
//! serialises model state that lives behind private fields spread over several
//! crates, so the byte-level plumbing sits here at the bottom of the
//! dependency stack where every crate can reach it. The format is deliberately
//! plain: little-endian fixed-width integers, `f64` values as raw IEEE-754
//! bit patterns (round-trips are bit-identical by construction), and
//! length-prefixed sequences.
//!
//! Decoding is written against *hostile* input: every read is bounds-checked,
//! every sequence length is validated against the bytes actually remaining
//! before any allocation happens (a forged `u64::MAX` length prefix must not
//! reserve memory), and malformed tags or shapes surface as a typed
//! [`WireError`] instead of a panic. No decoder in this module can loop
//! without consuming input.

use std::fmt;

/// Version of the on-disk / on-wire encoding produced by these primitives'
/// callers. This crate is the bottom of the dependency stack, so it cannot
/// see `dmt_core::snapshot::SNAPSHOT_VERSION`; instead the snapshot module
/// compile-time-asserts equality with this constant, and the `dmt-verify`
/// `version-skew` lint cross-checks the literals. Bump both together.
pub const WIRE_FORMAT_VERSION: u32 = 2;

/// Typed decoding failure: either the buffer ended early or the bytes decode
/// to a structurally invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced value was complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// The bytes were present but decode to an invalid value (bad tag, shape
    /// mismatch, malformed UTF-8, ...). The message names the first violation.
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {available} left"
                )
            }
            WireError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Helper for building [`WireError::Invalid`] from format arguments.
pub fn invalid(msg: impl Into<String>) -> WireError {
    WireError::Invalid(msg.into())
}

/// Append-only byte sink the encoders write through.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64` (lossless on every supported
    /// platform).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its raw IEEE-754 bit pattern (bit-exact round-trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed `f64` sequence.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed `u64` sequence.
    pub fn put_u64_slice(&mut self, values: &[u64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Append a length-prefixed `u32` sequence.
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Append length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor over an encoded byte buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`, positioned at the first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume and return the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Read a `u64` and convert it to `usize`, rejecting values that do not
    /// fit the platform.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| invalid(format!("length {v} exceeds the platform usize")))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `bool`, rejecting any byte other than `0` or `1`.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(invalid(format!("bool byte must be 0 or 1, got {other}"))),
        }
    }

    /// Read a sequence length prefix for elements of `elem_size` bytes,
    /// validating it against the bytes actually remaining **before** any
    /// allocation. A forged huge length therefore fails as truncation instead
    /// of reserving memory.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        let needed = len
            .checked_mul(elem_size)
            .ok_or_else(|| invalid(format!("sequence length {len} overflows")))?;
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed `f64` sequence.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed `u32` sequence.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| invalid(format!("malformed UTF-8 string: {e}")))
    }

    /// Require that every byte has been consumed (a section decoder calls
    /// this so trailing garbage cannot hide behind a valid prefix).
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(invalid(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64_slice(&[1.5, -2.5]);
        w.put_u64_slice(&[9, 10]);
        w.put_u32_slice(&[u32::MAX]);
        w.put_str("snapshot");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![9, 10]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![u32::MAX]);
        assert_eq!(r.get_str().unwrap(), "snapshot");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = Writer::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(
            r.get_u64(),
            Err(WireError::Truncated {
                needed: 8,
                available: 3
            })
        ));
    }

    #[test]
    fn forged_length_prefix_fails_before_allocating() {
        // A length prefix of u64::MAX with no payload behind it must fail as
        // truncation (or overflow), never reserve memory.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.get_f64_vec().unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated { .. } | WireError::Invalid(_)
        ));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(WireError::Invalid(_))));

        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(WireError::Invalid(_))));
    }

    #[test]
    fn expect_end_rejects_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(WireError::Invalid(_))));
    }
}
