//! Byte accounting for long-lived learning state.
//!
//! The north star is thousands of resident models serving one process, which
//! makes per-model memory a first-class reliability axis: a model registry
//! can only evict, budget or alert by size if every component can say how
//! many bytes it holds. [`MemoryUsage`] is that contract. Implementations
//! report **resident heap footprint** — the bytes a component keeps alive
//! between calls — measured by *capacity*, not length: a `Vec` that grew to a
//! high-water mark holds that allocation whether or not it is currently
//! full, and the high-water mark is exactly what an operator budgeting a
//! fleet needs to know.
//!
//! Conventions shared by every implementation in the workspace:
//!
//! * **Heap only.** `memory_bytes` counts owned heap allocations; the
//!   caller adds `size_of::<T>()` for the inline part where it matters
//!   (containers do this for their elements via [`slice_deep_bytes`]).
//! * **Capacity, not length** — see above. [`vec_bytes`] is the helper.
//! * **Approximate is fine, systematic is not.** Allocator slack and the
//!   internal layout of `std` collections are not modelled; whole
//!   subsystems must never be silently omitted.
//!
//! The accounting itself performs no allocation and is cheap (linear in the
//! number of containers, not elements), so callers can evaluate it at every
//! batch boundary — the Dynamic Model Tree's budget-enforcement ladder does.

/// Resident heap bytes owned by a value (capacity-based; see the
/// [module docs](self) for the exact conventions).
pub trait MemoryUsage {
    /// Bytes of owned heap memory this value keeps alive, excluding
    /// `size_of::<Self>()` itself.
    fn memory_bytes(&self) -> usize;
}

/// Heap bytes held by a `Vec`'s buffer: `capacity × size_of::<T>()`.
///
/// This intentionally ignores any heap memory the *elements* own; use
/// [`slice_deep_bytes`] when `T: MemoryUsage`.
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes owned by the elements of a slice (their inline parts are
/// already covered by the containing buffer; this adds what each element
/// owns beyond it).
pub fn slice_deep_bytes<T: MemoryUsage>(items: &[T]) -> usize {
    items.iter().map(MemoryUsage::memory_bytes).sum()
}

impl MemoryUsage for crate::logit::LogitModel {
    fn memory_bytes(&self) -> usize {
        self.params_heap_bytes()
    }
}

impl MemoryUsage for crate::softmax::SoftmaxModel {
    fn memory_bytes(&self) -> usize {
        self.params_heap_bytes()
    }
}

impl MemoryUsage for crate::glm::Glm {
    fn memory_bytes(&self) -> usize {
        match self {
            crate::glm::Glm::Logit(m) => m.memory_bytes(),
            crate::glm::Glm::Softmax(m) => m.memory_bytes(),
        }
    }
}

impl MemoryUsage for crate::naive_bayes::GaussianNaiveBayes {
    fn memory_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

impl MemoryUsage for crate::perceptron::AveragedPerceptron {
    fn memory_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AveragedPerceptron, GaussianNaiveBayes, Glm};

    #[test]
    fn vec_bytes_tracks_capacity_not_length() {
        let mut v: Vec<f64> = Vec::with_capacity(16);
        assert_eq!(vec_bytes(&v), 16 * 8);
        v.push(1.0);
        assert_eq!(vec_bytes(&v), 16 * 8);
        assert_eq!(vec_bytes(&Vec::<f64>::new()), 0);
    }

    #[test]
    fn glm_bytes_cover_the_parameter_vector() {
        // Binary logit over m features: m + 1 parameters.
        let logit = Glm::new_zeros(4, 2);
        assert_eq!(logit.memory_bytes(), 5 * 8);
        // Softmax over c classes: c × (m + 1) parameters.
        let softmax = Glm::new_zeros(4, 3);
        assert_eq!(softmax.memory_bytes(), 3 * 5 * 8);
    }

    #[test]
    fn naive_bayes_and_perceptron_report_nonzero_heap() {
        let nb = GaussianNaiveBayes::new(3, 2);
        // Two per-class stat vectors plus the outer vec and class counts.
        assert!(nb.memory_bytes() > 0);
        let p = AveragedPerceptron::new(3, 2);
        // Current + averaged weights: 2 × c(m+1) f64s.
        assert_eq!(p.memory_bytes(), 2 * 2 * 4 * 8);
    }

    #[test]
    fn slice_deep_bytes_sums_elements() {
        let models = vec![Glm::new_zeros(2, 2), Glm::new_zeros(2, 2)];
        assert_eq!(slice_deep_bytes(&models), 2 * 3 * 8);
    }
}
