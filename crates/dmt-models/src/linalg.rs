//! Small dense-vector linear-algebra helpers.
//!
//! The models in this workspace are tiny (at most a few thousand parameters),
//! so hand-rolled loops over `&[f64]` are simpler and faster than pulling in a
//! full linear-algebra crate. All functions are panic-free for matching
//! lengths and debug-assert length agreement.

/// Dot product `a · b`.
///
/// # Panics
/// Debug builds assert that both slices have the same length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// In-place `y += alpha * x` (the BLAS "axpy" operation).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place element-wise addition `y += x`.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(x.len(), y.len(), "add_assign: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// Allocation-free callers should prefer [`sub_into`].
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise difference written into a caller-provided buffer:
/// `out[i] = a[i] - b[i]`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "sub_into: length mismatch");
    debug_assert_eq!(a.len(), out.len(), "sub_into: output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// Squared Euclidean norm of the element-wise difference `||a - b||²`,
/// computed without materialising the difference.
#[inline]
pub fn sub_norm_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sub_norm_sq: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Squared Euclidean norm `||v||²`.
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// Euclidean norm `||v||`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Scale a vector in place: `v *= alpha`.
#[inline]
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Numerically stable logistic sigmoid `1 / (1 + e^{-z})`.
///
/// Uses the two-branch formulation to avoid overflow of `exp` for large `|z|`.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softmax over the logits, returning a probability vector.
///
/// Subtracts the maximum logit before exponentiation. Returns the uniform
/// distribution for an empty input. Allocation-free callers should prefer
/// [`softmax_in_place`] (or [`softmax_into`] when the logits must survive).
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Numerically stable softmax computed in place: `values` holds logits on
/// entry and the corresponding probability vector on exit.
pub fn softmax_in_place(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 && sum.is_finite() {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / values.len() as f64;
        for v in values.iter_mut() {
            *v = uniform;
        }
    }
}

/// Numerically stable softmax written into a caller-provided buffer.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len(), "softmax_into: length mismatch");
    out.copy_from_slice(logits);
    softmax_in_place(out);
}

/// Clamp a probability away from 0 and 1 so that `ln` stays finite.
///
/// The clamping constant (1e-15) matches common practice in streaming-ML
/// libraries and keeps per-instance negative log-likelihood below ~34.5.
#[inline]
pub fn clamp_proba(p: f64) -> f64 {
    p.clamp(1e-15, 1.0 - 1e-15)
}

/// Numerically stable `log(1 + e^{z})` (softplus), used by the binary logit
/// negative log-likelihood.
#[inline]
pub fn log1p_exp(z: f64) -> f64 {
    if z > 35.0 {
        // e^{-z} is negligible; log(1 + e^z) ≈ z.
        z
    } else if z < -35.0 {
        // e^{z} is negligible; log(1 + e^z) ≈ e^z ≈ 0.
        z.exp()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_basic() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < EPS);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn add_assign_and_sub_are_inverses() {
        let a = vec![1.0, -2.0, 3.5];
        let b = vec![0.5, 0.25, -1.0];
        let mut c = a.clone();
        add_assign(&mut c, &b);
        let back = sub(&c, &b);
        for (x, y) in back.iter().zip(a.iter()) {
            assert!((x - y).abs() < EPS);
        }
    }

    #[test]
    fn norms() {
        assert!((norm_sq(&[3.0, 4.0]) - 25.0).abs() < EPS);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < EPS);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < EPS);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-3);
        // sigmoid(-z) = 1 - sigmoid(z)
        for &z in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_into_matches_sub_bit_for_bit() {
        let a = [1.0, -2.5, 3.125, 1e-300];
        let b = [0.5, 0.25, -1.0, 2e-300];
        let allocated = sub(&a, &b);
        let mut out = [0.0; 4];
        sub_into(&a, &b, &mut out);
        for (x, y) in allocated.iter().zip(out.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!((sub_norm_sq(&a, &b) - norm_sq(&allocated)).abs() < 1e-12);
    }

    #[test]
    fn softmax_into_matches_softmax_bit_for_bit() {
        for logits in [vec![1.0, 2.0, 3.0], vec![0.0], vec![-1e6, 0.0, 1e6]] {
            let allocated = softmax(&logits);
            let mut out = vec![0.0; logits.len()];
            softmax_into(&logits, &mut out);
            for (x, y) in allocated.iter().zip(out.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1e6, 0.0, -1e6]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_of_equal_logits_is_uniform() {
        let p = softmax(&[2.0, 2.0, 2.0, 2.0]);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn clamp_proba_keeps_ln_finite() {
        assert!(clamp_proba(0.0).ln().is_finite());
        assert!(clamp_proba(1.0).ln().is_finite());
        assert_eq!(clamp_proba(0.5), 0.5);
    }

    #[test]
    fn log1p_exp_matches_naive_in_safe_range() {
        for &z in &[-20.0f64, -1.0, 0.0, 1.0, 20.0] {
            let naive = (1.0 + z.exp()).ln();
            assert!((log1p_exp(z) - naive).abs() < 1e-9, "z={z}");
        }
    }

    #[test]
    fn log1p_exp_is_finite_for_extreme_inputs() {
        assert!(log1p_exp(1e4).is_finite());
        assert!(log1p_exp(-1e4).is_finite());
        assert!((log1p_exp(1e4) - 1e4).abs() < 1e-9);
        assert!(log1p_exp(-1e4).abs() < 1e-9);
    }
}
