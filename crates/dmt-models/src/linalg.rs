//! Dense-vector and small dense-matrix kernels for the model layer.
//!
//! The models in this workspace are tiny (at most a few thousand parameters),
//! so hand-rolled kernels over `&[f64]` beat a full linear-algebra crate. The
//! hot reductions ([`dot`], [`axpy`], [`gemv_into`]) are written with a
//! fixed-width 8-lane unrolling: eight independent accumulators remove the
//! loop-carried floating-point dependency, which is what allows LLVM to
//! autovectorize `f64` sums without `-ffast-math`. All kernels are
//! deterministic — the lane split and the final pairwise reduction are fixed,
//! so results are reproducible across runs (they may differ from a naive
//! left-to-right sum by floating-point reassociation, but every caller in the
//! workspace goes through the same kernels, so the scalar and batched model
//! paths stay mutually bit-identical).
//!
//! Batched model updates view their row-major scratch buffers through
//! [`MatRef`]/[`MatMut`]: a contiguous `rows × cols` slice with zero-copy row
//! access. The Dynamic Model Tree gathers each node's routed sub-batch into
//! such a matrix once and then runs every per-row kernel over contiguous
//! memory.

/// Unroll width of the reduction kernels. Eight `f64` lanes fill two AVX2
/// registers (or one AVX-512 register) and are enough to hide FP add latency
/// on every x86-64 / aarch64 core the CI fleet uses.
pub const LANES: usize = 8;

/// An immutable row-major matrix view over a contiguous `f64` slice.
///
/// `data.len()` must equal `rows * cols`; rows are contiguous, so `row(i)` is
/// a plain sub-slice and iterating rows walks memory linearly.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> MatRef<'a> {
    /// Wrap a contiguous slice as a `rows × cols` row-major matrix.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    #[inline]
    pub fn new(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatRef: shape mismatch");
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over the rows (contiguous slices, in order).
    #[inline]
    pub fn row_iter(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        // `chunks_exact(0)` would panic; a 0-column matrix has no data.
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The underlying flat slice.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }
}

/// A mutable row-major matrix view over a contiguous `f64` slice.
#[derive(Debug)]
pub struct MatMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
}

impl<'a> MatMut<'a> {
    /// Wrap a contiguous mutable slice as a `rows × cols` row-major matrix.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    #[inline]
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatMut: shape mismatch");
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a contiguous shared slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reborrow as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

/// Dot product `a · b`, 8-lane unrolled.
///
/// The reduction uses [`LANES`] independent accumulators over the unrollable
/// prefix, a scalar loop over the remainder and a fixed pairwise lane
/// reduction, so the result is deterministic for a given input length.
///
/// # Panics
/// Debug builds assert that both slices have the same length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let split = a.len() - a.len() % LANES;
    let mut lanes = [0.0f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(b[split..].iter()) {
        tail += x * y;
    }
    let q0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let q1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    (q0 + q1) + tail
}

/// In-place `y += alpha * x` (the BLAS "axpy" operation), 8-lane unrolled.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let split = x.len() - x.len() % LANES;
    for (cy, cx) in y[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            cy[l] += alpha * cx[l];
        }
    }
    for (yi, xi) in y[split..].iter_mut().zip(x[split..].iter()) {
        *yi += alpha * xi;
    }
}

/// In-place element-wise addition `y += x`.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(x.len(), y.len(), "add_assign: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += xi;
    }
}

/// Dense matrix–vector product written into `out`: `out[i] = a.row(i) · x`.
///
/// Each row product goes through the unrolled [`dot`] kernel, so a batched
/// caller gets bit-identical scores to per-row `dot` calls.
#[inline]
pub fn gemv_into(a: MatRef<'_>, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.rows(), out.len(), "gemv_into: output length mismatch");
    for (o, row) in out.iter_mut().zip(a.row_iter()) {
        *o = dot(row, x);
    }
}

/// Affine matrix–vector product for class-major GLM parameter blocks:
/// `out[c] = w.row(c)[..m] · x + w.row(c)[m]` where `m = x.len()`.
///
/// This is the batched form of the per-class "weights · features + bias"
/// score used by the softmax model (`w` has `m + 1` columns, the last being
/// the intercept).
#[inline]
pub fn gemv_bias_into(w: MatRef<'_>, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(w.cols(), x.len() + 1, "gemv_bias_into: column mismatch");
    debug_assert_eq!(w.rows(), out.len(), "gemv_bias_into: output mismatch");
    let m = x.len();
    for (o, row) in out.iter_mut().zip(w.row_iter()) {
        *o = dot(&row[..m], x) + row[m];
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// Allocation-free callers should prefer [`sub_into`].
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise difference written into a caller-provided buffer:
/// `out[i] = a[i] - b[i]`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "sub_into: length mismatch");
    debug_assert_eq!(a.len(), out.len(), "sub_into: output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// Squared Euclidean norm of the element-wise difference `||a - b||²`,
/// computed without materialising the difference (8-lane unrolled).
#[inline]
pub fn sub_norm_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sub_norm_sq: length mismatch");
    let split = a.len() - a.len() % LANES;
    let mut lanes = [0.0f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(b[split..].iter()) {
        let d = x - y;
        tail += d * d;
    }
    let q0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let q1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    (q0 + q1) + tail
}

/// Squared Euclidean norm `||v||²` (shares the [`sub_norm_sq`] lane layout
/// via `dot(v, v)`).
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    dot(v, v)
}

/// Euclidean norm `||v||`.
#[inline]
pub fn norm(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Scale a vector in place: `v *= alpha`.
#[inline]
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Exponent cutoff below which `exp` is treated as exactly zero. `exp(z)`
/// underflows to a *subnormal* for `z ∈ (−745, −708)`; subnormal arithmetic
/// traps into microcode on x86 (~100 cycles per op), which visibly stalls the
/// saturated-model hot path. `exp(−708) ≈ 3e−308` is already indistinguishable
/// from zero for every consumer in this workspace (probabilities are clamped
/// to `1e−15` before any logarithm).
const EXP_UNDERFLOW: f64 = -708.0;

/// Numerically stable logistic sigmoid `1 / (1 + e^{-z})`.
///
/// Uses the two-branch formulation to avoid overflow of `exp` for large
/// `|z|`, and flushes the subnormal underflow range of `exp` to zero (see
/// `EXP_UNDERFLOW`) so saturated models do not pay the denormal penalty.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = if -z < EXP_UNDERFLOW { 0.0 } else { (-z).exp() };
        1.0 / (1.0 + e)
    } else {
        let e = if z < EXP_UNDERFLOW { 0.0 } else { z.exp() };
        e / (1.0 + e)
    }
}

/// Numerically stable softmax over the logits, returning a probability vector.
///
/// Subtracts the maximum logit before exponentiation. Returns the uniform
/// distribution for an empty input. Allocation-free callers should prefer
/// [`softmax_in_place`] (or [`softmax_into`] when the logits must survive).
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Numerically stable softmax computed in place: `values` holds logits on
/// entry and the corresponding probability vector on exit.
pub fn softmax_in_place(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in values.iter_mut() {
        let z = *v - max;
        *v = if z < EXP_UNDERFLOW { 0.0 } else { z.exp() };
        sum += *v;
    }
    if sum > 0.0 && sum.is_finite() {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / values.len() as f64;
        for v in values.iter_mut() {
            *v = uniform;
        }
    }
}

/// Numerically stable softmax written into a caller-provided buffer.
pub fn softmax_into(logits: &[f64], out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len(), "softmax_into: length mismatch");
    out.copy_from_slice(logits);
    softmax_in_place(out);
}

/// Clamp a probability away from 0 and 1 so that `ln` stays finite.
///
/// The clamping constant (1e-15) matches common practice in streaming-ML
/// libraries and keeps per-instance negative log-likelihood below ~34.5.
#[inline]
pub fn clamp_proba(p: f64) -> f64 {
    p.clamp(1e-15, 1.0 - 1e-15)
}

/// Numerically stable `log(1 + e^{z})` (softplus), used by the binary logit
/// negative log-likelihood.
#[inline]
pub fn log1p_exp(z: f64) -> f64 {
    if z > 35.0 {
        // e^{-z} is negligible; log(1 + e^z) ≈ z.
        z
    } else if z < -35.0 {
        // e^{z} is negligible; log(1 + e^z) ≈ e^z ≈ 0.
        z.exp()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_basic() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < EPS);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_matches_naive_sum_across_lengths() {
        // Exercise every remainder class around the 8-lane unroll boundary.
        for n in 0..40usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.5 - (i as f64) * 0.125).collect();
            let naive: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn axpy_matches_scalar_update_across_lengths() {
        for n in 0..40usize {
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 2.0).collect();
            let mut y: Vec<f64> = (0..n).map(|i| 1.0 - i as f64).collect();
            let mut expected = y.clone();
            for (e, xi) in expected.iter_mut().zip(x.iter()) {
                *e += -0.75 * xi;
            }
            axpy(-0.75, &x, &mut y);
            for (a, b) in y.iter().zip(expected.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn mat_ref_rows_are_contiguous_views() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let m = MatRef::new(&data, 3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
        let collected: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn mat_mut_rows_are_writable() {
        let mut data = vec![0.0; 6];
        let mut m = MatMut::new(&mut data, 2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(m.as_ref().row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(data[5], 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mat_ref_rejects_wrong_shape() {
        let data = vec![0.0; 5];
        let _ = MatRef::new(&data, 2, 3);
    }

    #[test]
    fn gemv_matches_per_row_dot() {
        let data: Vec<f64> = (0..20).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let a = MatRef::new(&data, 4, 5);
        let x = [0.5, -1.0, 2.0, 0.25, -0.125];
        let mut out = [0.0; 4];
        gemv_into(a, &x, &mut out);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.to_bits(), dot(a.row(i), &x).to_bits());
        }
    }

    #[test]
    fn gemv_bias_adds_the_intercept_column() {
        // 2 classes over 3 features: rows are [w0 w1 w2 b].
        let w = [1.0, 0.0, 0.0, 10.0, 0.0, 1.0, 0.0, -10.0];
        let m = MatRef::new(&w, 2, 4);
        let x = [2.0, 3.0, 4.0];
        let mut out = [0.0; 2];
        gemv_bias_into(m, &x, &mut out);
        assert!((out[0] - 12.0).abs() < EPS);
        assert!((out[1] + 7.0).abs() < EPS);
    }

    #[test]
    fn add_assign_and_sub_are_inverses() {
        let a = vec![1.0, -2.0, 3.5];
        let b = vec![0.5, 0.25, -1.0];
        let mut c = a.clone();
        add_assign(&mut c, &b);
        let back = sub(&c, &b);
        for (x, y) in back.iter().zip(a.iter()) {
            assert!((x - y).abs() < EPS);
        }
    }

    #[test]
    fn norms() {
        assert!((norm_sq(&[3.0, 4.0]) - 25.0).abs() < EPS);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < EPS);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn norm_sq_agrees_with_sub_norm_sq() {
        let a: Vec<f64> = (0..23).map(|i| (i as f64) * 0.1).collect();
        let b: Vec<f64> = (0..23).map(|i| 2.0 - (i as f64) * 0.05).collect();
        let diff = sub(&a, &b);
        assert_eq!(sub_norm_sq(&a, &b).to_bits(), norm_sq(&diff).to_bits());
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale(&mut v, -3.0);
        assert_eq!(v, vec![-3.0, 6.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < EPS);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-3);
        // sigmoid(-z) = 1 - sigmoid(z)
        for &z in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_into_matches_sub_bit_for_bit() {
        let a = [1.0, -2.5, 3.125, 1e-300];
        let b = [0.5, 0.25, -1.0, 2e-300];
        let allocated = sub(&a, &b);
        let mut out = [0.0; 4];
        sub_into(&a, &b, &mut out);
        for (x, y) in allocated.iter().zip(out.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!((sub_norm_sq(&a, &b) - norm_sq(&allocated)).abs() < 1e-12);
    }

    #[test]
    fn softmax_into_matches_softmax_bit_for_bit() {
        for logits in [vec![1.0, 2.0, 3.0], vec![0.0], vec![-1e6, 0.0, 1e6]] {
            let allocated = softmax(&logits);
            let mut out = vec![0.0; logits.len()];
            softmax_into(&logits, &mut out);
            for (x, y) in allocated.iter().zip(out.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1e6, 0.0, -1e6]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_of_equal_logits_is_uniform() {
        let p = softmax(&[2.0, 2.0, 2.0, 2.0]);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn clamp_proba_keeps_ln_finite() {
        assert!(clamp_proba(0.0).ln().is_finite());
        assert!(clamp_proba(1.0).ln().is_finite());
        assert_eq!(clamp_proba(0.5), 0.5);
    }

    #[test]
    fn log1p_exp_matches_naive_in_safe_range() {
        for &z in &[-20.0f64, -1.0, 0.0, 1.0, 20.0] {
            let naive = (1.0 + z.exp()).ln();
            assert!((log1p_exp(z) - naive).abs() < 1e-9, "z={z}");
        }
    }

    #[test]
    fn log1p_exp_is_finite_for_extreme_inputs() {
        assert!(log1p_exp(1e4).is_finite());
        assert!(log1p_exp(-1e4).is_finite());
        assert!((log1p_exp(1e4) - 1e4).abs() < 1e-9);
        assert!(log1p_exp(-1e4).abs() < 1e-9);
    }
}
