//! [`Glm`] — the Generalized Linear Model dispatcher used by the Dynamic
//! Model Tree.
//!
//! §V-A of the paper proposes a binary logit model for two-class problems and
//! a multinomial logit (softmax) model otherwise. [`Glm`] hides that choice
//! behind one concrete type so that tree code does not need trait objects.

use crate::linalg::{MatMut, MatRef};
use crate::logit::LogitModel;
use crate::softmax::SoftmaxModel;
use crate::wire::{self, Reader, WireError, Writer};
use crate::{BatchMode, Rows, SimpleModel};

/// A Generalized Linear Model: binary logit or multinomial logit, selected by
/// the number of classes.
#[derive(Debug, Clone, PartialEq)]
pub enum Glm {
    /// Binary logistic regression (used when `num_classes == 2`).
    Logit(LogitModel),
    /// Multinomial logistic regression (used when `num_classes > 2`).
    Softmax(SoftmaxModel),
}

impl Glm {
    /// Create a GLM with zero-initialised parameters.
    pub fn new_zeros(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        if num_classes == 2 {
            Glm::Logit(LogitModel::new_zeros(num_features))
        } else {
            Glm::Softmax(SoftmaxModel::new_zeros(num_features, num_classes))
        }
    }

    /// Create a GLM with small random initial weights (paper default for the
    /// root node of a Dynamic Model Tree).
    pub fn new_random(num_features: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        if num_classes == 2 {
            Glm::Logit(LogitModel::new_random(num_features, seed))
        } else {
            Glm::Softmax(SoftmaxModel::new_random(num_features, num_classes, seed))
        }
    }

    /// Create a zero-parameter placeholder GLM without touching the
    /// allocator (see [`LogitModel::placeholder`]). Placeholders back-fill
    /// moved-out tree-node payloads during parallel subtree updates and must
    /// never be asked to predict or learn.
    pub fn placeholder() -> Self {
        Glm::Logit(LogitModel::placeholder())
    }

    /// Create a child GLM warm-started with the parameters of a parent GLM.
    pub fn warm_start_from(parent: &Self) -> Self {
        match parent {
            Glm::Logit(m) => Glm::Logit(LogitModel::warm_start_from(m)),
            Glm::Softmax(m) => Glm::Softmax(SoftmaxModel::warm_start_from(m)),
        }
    }

    /// Apply a single warm-start gradient step of eq. (6):
    /// `Θ_C ≈ Θ_S − (λ/|C|) ∇_{Θ_S} L(Θ_S, Y_C, X_C)` given a pre-computed
    /// gradient *sum* over the candidate subset and its count.
    pub fn warm_start_with_gradient(parent: &Self, grad_sum: &[f64], count: u64, lr: f64) -> Self {
        let mut child = Self::warm_start_from(parent);
        if count > 0 {
            let step = lr / count as f64;
            for (p, g) in child.params_mut().iter_mut().zip(grad_sum.iter()) {
                *p -= step * g;
            }
        }
        child
    }

    /// Serialise the GLM (variant tag plus the underlying model) through `w`;
    /// the inverse of [`Glm::decode`].
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Glm::Logit(m) => {
                w.put_u8(0);
                m.encode(w);
            }
            Glm::Softmax(m) => {
                w.put_u8(1);
                m.encode(w);
            }
        }
    }

    /// Reconstruct a GLM from [`Glm::encode`] output, rejecting unknown
    /// variant tags.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Glm::Logit(LogitModel::decode(r)?)),
            1 => Ok(Glm::Softmax(SoftmaxModel::decode(r)?)),
            tag => Err(wire::invalid(format!("unknown GLM variant tag {tag}"))),
        }
    }
}

impl SimpleModel for Glm {
    fn num_params(&self) -> usize {
        match self {
            Glm::Logit(m) => m.num_params(),
            Glm::Softmax(m) => m.num_params(),
        }
    }

    fn num_classes(&self) -> usize {
        match self {
            Glm::Logit(m) => m.num_classes(),
            Glm::Softmax(m) => m.num_classes(),
        }
    }

    fn num_features(&self) -> usize {
        match self {
            Glm::Logit(m) => m.num_features(),
            Glm::Softmax(m) => m.num_features(),
        }
    }

    fn params(&self) -> &[f64] {
        match self {
            Glm::Logit(m) => m.params(),
            Glm::Softmax(m) => m.params(),
        }
    }

    fn params_mut(&mut self) -> &mut [f64] {
        match self {
            Glm::Logit(m) => m.params_mut(),
            Glm::Softmax(m) => m.params_mut(),
        }
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            Glm::Logit(m) => m.predict_proba_into(x, out),
            Glm::Softmax(m) => m.predict_proba_into(x, out),
        }
    }

    fn predict(&self, x: &[f64]) -> usize {
        match self {
            Glm::Logit(m) => m.predict(x),
            Glm::Softmax(m) => m.predict(x),
        }
    }

    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        match self {
            Glm::Logit(m) => m.loss_and_gradient_into(xs, ys, grad, class_buf),
            Glm::Softmax(m) => m.loss_and_gradient_into(xs, ys, grad, class_buf),
        }
    }

    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        match self {
            Glm::Logit(m) => m.sgd_step_into(xs, ys, learning_rate, grad_buf, class_buf),
            Glm::Softmax(m) => m.sgd_step_into(xs, ys, learning_rate, grad_buf, class_buf),
        }
    }

    fn predict_proba_batch_into(&self, xs: MatRef<'_>, out: &mut [f64]) {
        match self {
            Glm::Logit(m) => m.predict_proba_batch_into(xs, out),
            Glm::Softmax(m) => m.predict_proba_batch_into(xs, out),
        }
    }

    fn loss_and_gradient_batch_into(
        &self,
        xs: MatRef<'_>,
        ys: &[usize],
        losses: &mut [f64],
        grads: MatMut<'_>,
        class_buf: &mut [f64],
    ) -> f64 {
        match self {
            Glm::Logit(m) => m.loss_and_gradient_batch_into(xs, ys, losses, grads, class_buf),
            Glm::Softmax(m) => m.loss_and_gradient_batch_into(xs, ys, losses, grads, class_buf),
        }
    }

    fn learn_batch_into(
        &mut self,
        xs: MatRef<'_>,
        ys: &[usize],
        learning_rate: f64,
        mode: BatchMode,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        match self {
            Glm::Logit(m) => m.learn_batch_into(xs, ys, learning_rate, mode, grad_buf, class_buf),
            Glm::Softmax(m) => m.learn_batch_into(xs, ys, learning_rate, mode, grad_buf, class_buf),
        }
    }

    fn observations_seen(&self) -> u64 {
        match self {
            Glm::Logit(m) => m.observations_seen(),
            Glm::Softmax(m) => m.observations_seen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_classes_selects_logit() {
        let glm = Glm::new_zeros(4, 2);
        assert!(matches!(glm, Glm::Logit(_)));
        assert_eq!(glm.num_params(), 5);
    }

    #[test]
    fn many_classes_selects_softmax() {
        let glm = Glm::new_zeros(4, 6);
        assert!(matches!(glm, Glm::Softmax(_)));
        assert_eq!(glm.num_params(), 6 * 5);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_panics() {
        let _ = Glm::new_zeros(4, 1);
    }

    #[test]
    fn warm_start_preserves_variant_and_params() {
        let parent = Glm::new_random(3, 5, 77);
        let child = Glm::warm_start_from(&parent);
        assert!(matches!(child, Glm::Softmax(_)));
        assert_eq!(child.params(), parent.params());
    }

    #[test]
    fn warm_start_with_gradient_moves_against_gradient() {
        let parent = Glm::new_zeros(2, 2);
        let grad_sum = vec![1.0, -2.0, 0.5];
        let child = Glm::warm_start_with_gradient(&parent, &grad_sum, 10, 0.05);
        // step = 0.05 / 10 = 0.005; params = 0 - 0.005 * grad.
        assert!((child.params()[0] + 0.005).abs() < 1e-12);
        assert!((child.params()[1] - 0.01).abs() < 1e-12);
        assert!((child.params()[2] + 0.0025).abs() < 1e-12);
    }

    #[test]
    fn warm_start_with_zero_count_is_plain_copy() {
        let parent = Glm::new_random(2, 2, 5);
        let child = Glm::warm_start_with_gradient(&parent, &[1.0, 1.0, 1.0], 0, 0.05);
        assert_eq!(child.params(), parent.params());
    }

    #[test]
    fn glm_trains_like_underlying_logit() {
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 / 10.0, ((i * 3) % 7) as f64 / 7.0])
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut glm = Glm::new_zeros(2, 2);
        for _ in 0..300 {
            glm.sgd_step(&rows, &ys, 0.5);
        }
        let correct = rows
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| glm.predict(x) == y)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.9);
    }

    #[test]
    fn predict_proba_length_matches_classes() {
        let glm2 = Glm::new_zeros(3, 2);
        let glm7 = Glm::new_zeros(3, 7);
        assert_eq!(glm2.predict_proba(&[0.0, 0.0, 0.0]).len(), 2);
        assert_eq!(glm7.predict_proba(&[0.0, 0.0, 0.0]).len(), 7);
    }
}
