//! Averaged multi-class perceptron.
//!
//! Not used by the paper's headline experiments but provided as an alternative
//! simple model (the paper explicitly invites experimenting with other base
//! models, §V-A). It also mirrors the "Fast Perceptron Decision Tree" leaf
//! models of Bifet et al. (2010), which the related-work section cites.

use crate::linalg::{dot, softmax_in_place};
use crate::wire::{self, Reader, WireError, Writer};
use crate::{Rows, SimpleModel};

/// Multi-class averaged perceptron with one weight vector (plus bias) per
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedPerceptron {
    /// Current class-major weights, `c * (m + 1)` entries.
    params: Vec<f64>,
    /// Running sum of weights for averaging.
    averaged: Vec<f64>,
    num_features: usize,
    num_classes: usize,
    seen: u64,
}

impl AveragedPerceptron {
    /// Heap bytes held by the current and averaged weight vectors
    /// (capacity-based; see [`crate::memory::MemoryUsage`]).
    pub(crate) fn heap_bytes(&self) -> usize {
        crate::memory::vec_bytes(&self.params) + crate::memory::vec_bytes(&self.averaged)
    }

    /// Create a zero-initialised perceptron.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        let len = num_classes * (num_features + 1);
        Self {
            params: vec![0.0; len],
            averaged: vec![0.0; len],
            num_features,
            num_classes,
            seen: 0,
        }
    }

    /// Serialise the full model state (shape, current and averaged weights)
    /// through `w`; the inverse of [`AveragedPerceptron::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.num_features);
        w.put_usize(self.num_classes);
        w.put_u64(self.seen);
        w.put_f64_slice(&self.params);
        w.put_f64_slice(&self.averaged);
    }

    /// Reconstruct a model from [`AveragedPerceptron::encode`] output,
    /// validating both weight vectors against the announced shape.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num_features = r.get_usize()?;
        let num_classes = r.get_usize()?;
        let seen = r.get_u64()?;
        let params = r.get_f64_vec()?;
        let averaged = r.get_f64_vec()?;
        if num_classes < 2 {
            return Err(wire::invalid(format!(
                "perceptron needs at least two classes, got {num_classes}"
            )));
        }
        let expected = num_classes
            .checked_mul(num_features + 1)
            .ok_or_else(|| wire::invalid("perceptron parameter count overflows"))?;
        if params.len() != expected || averaged.len() != expected {
            return Err(wire::invalid(format!(
                "perceptron of shape {num_classes}×({num_features}+1) needs {expected} \
                 parameters, got {} current and {} averaged",
                params.len(),
                averaged.len()
            )));
        }
        Ok(Self {
            params,
            averaged,
            num_features,
            num_classes,
            seen,
        })
    }

    fn scores_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.num_classes, "scores_into: buffer length");
        let stride = self.num_features + 1;
        for (c, o) in out.iter_mut().enumerate() {
            let block = &self.params[c * stride..(c + 1) * stride];
            *o = dot(&block[..self.num_features], x) + block[self.num_features];
        }
    }

    /// Averaged weights accumulated over all updates (stabilised predictor).
    pub fn averaged_params(&self) -> Vec<f64> {
        if self.seen == 0 {
            return self.params.clone();
        }
        self.averaged
            .iter()
            .map(|&w| w / self.seen as f64)
            .collect()
    }
}

impl SimpleModel for AveragedPerceptron {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_features(&self) -> usize {
        self.num_features
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        self.scores_into(x, out);
        softmax_in_place(out);
    }

    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        // Perceptron (hinge-like) loss: sum over mistakes of the margin
        // deficit; the gradient follows the classic update rule.
        debug_assert_eq!(grad.len(), self.params.len());
        let stride = self.num_features + 1;
        let mut loss = 0.0;
        grad.fill(0.0);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            self.scores_into(x, class_buf);
            let pred = crate::argmax(class_buf);
            if pred != y && y < self.num_classes {
                loss += (class_buf[pred] - class_buf[y]).max(0.0) + 1.0;
                // Gradient: +x for the wrongly predicted class, -x for the
                // true class.
                for (i, &xi) in x.iter().enumerate() {
                    grad[pred * stride + i] += xi;
                    grad[y * stride + i] -= xi;
                }
                grad[pred * stride + self.num_features] += 1.0;
                grad[y * stride + self.num_features] -= 1.0;
            }
        }
        loss
    }

    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        let loss = self.loss_and_gradient_into(xs, ys, grad_buf, class_buf);
        for (p, g) in self.params.iter_mut().zip(grad_buf.iter()) {
            *p -= learning_rate * g;
        }
        for (a, p) in self.averaged.iter_mut().zip(self.params.iter()) {
            *a += p * n as f64;
        }
        self.seen += n as u64;
        loss
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_free_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Three linearly separable classes on a line.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..150 {
            let v = (i % 30) as f64 / 10.0; // 0.0 .. 2.9
            xs.push(vec![v, 1.0 - v]);
            ys.push(if v < 1.0 {
                0
            } else if v < 2.0 {
                1
            } else {
                2
            });
        }
        (xs, ys)
    }

    #[test]
    fn untrained_predicts_uniform() {
        let p = AveragedPerceptron::new(2, 3).predict_proba(&[0.5, 0.5]);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn learns_linearly_separable_three_class_problem() {
        let (xs, ys) = xor_free_batch();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = AveragedPerceptron::new(2, 3);
        for _ in 0..200 {
            model.sgd_step(&rows, &ys, 0.1);
        }
        let correct = rows
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.8);
    }

    #[test]
    fn loss_is_zero_when_all_correct() {
        let (xs, ys) = xor_free_batch();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = AveragedPerceptron::new(2, 3);
        for _ in 0..300 {
            model.sgd_step(&rows, &ys, 0.1);
        }
        let correct = rows
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        if correct == rows.len() {
            let (loss, grad) = model.loss_and_gradient(&rows, &ys);
            assert_eq!(loss, 0.0);
            assert!(grad.iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn averaged_params_have_same_length() {
        let mut model = AveragedPerceptron::new(3, 2);
        let x: &[f64] = &[1.0, 0.0, 0.0];
        model.sgd_step(&[x], &[1], 0.5);
        assert_eq!(model.averaged_params().len(), model.num_params());
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut model = AveragedPerceptron::new(2, 2);
        assert_eq!(model.sgd_step(&[], &[], 0.1), 0.0);
        assert_eq!(model.observations_seen(), 0);
    }
}
