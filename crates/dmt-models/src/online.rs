//! The [`OnlineClassifier`] trait: the common contract of every streaming
//! classifier in this workspace (the Dynamic Model Tree, all baseline trees
//! and the ensembles).
//!
//! The paper evaluates classifiers prequentially on batches of 0.1 % of the
//! stream; accordingly the trait exposes batch-level `predict`/`learn`
//! operations plus the complexity accounting needed for Tables III and IV.

use crate::Rows;

/// Model-complexity measures following §VI-D2 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complexity {
    /// Number of splits: one per inner node, plus one per *binary* leaf
    /// classifier or `c` per multiclass leaf classifier; majority-class leaves
    /// contribute nothing.
    pub splits: f64,
    /// Number of parameters: one per inner node (the split value), plus one
    /// per majority-class leaf or `m` per simple-model leaf (per class for
    /// multinomial models).
    pub parameters: f64,
}

/// A streaming classifier that can be evaluated prequentially.
pub trait OnlineClassifier: Send {
    /// Human-readable model name used in result tables (e.g. `"DMT"`).
    fn name(&self) -> &str;

    /// Number of target classes.
    fn num_classes(&self) -> usize;

    /// Predict the class of a single instance.
    fn predict(&self, x: &[f64]) -> usize;

    /// Predict class probabilities for a single instance.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Incorporate a labelled batch (the "train" part of test-then-train).
    fn learn_batch(&mut self, xs: Rows<'_>, ys: &[usize]);

    /// Current model complexity (splits and parameters).
    fn complexity(&self) -> Complexity;

    /// Resident heap bytes this model keeps alive between batches
    /// (capacity-based; see [`crate::memory::MemoryUsage`] for the
    /// conventions). Every classifier in the workspace overrides this with a
    /// full accounting of its learning state; the benches report it as
    /// `bytes_per_model` and a model registry can budget or evict by it. The
    /// default of `0` exists only so external implementors of the trait are
    /// not forced to account — `0` means "unaccounted", never "free".
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Predict a whole batch into a caller-provided buffer
    /// (`out.len() == xs.len()`), so evaluation loops can reuse one
    /// predictions buffer across batches instead of allocating per call.
    ///
    /// The default delegates to [`OnlineClassifier::predict`] per row;
    /// batched models override it with a single routed pass (the Dynamic
    /// Model Tree runs its arena descent once for the whole batch, the
    /// ensembles reuse one vote buffer across rows).
    fn predict_batch_into(&self, xs: Rows<'_>, out: &mut [usize]) {
        debug_assert_eq!(xs.len(), out.len(), "predict_batch_into: buffer length");
        for (x, o) in xs.iter().zip(out.iter_mut()) {
            *o = self.predict(x);
        }
    }

    /// Predict a whole batch (convenience used by the evaluator). Allocates
    /// the result vector; hot loops should reuse a buffer through
    /// [`OnlineClassifier::predict_batch_into`].
    fn predict_batch(&self, xs: Rows<'_>) -> Vec<usize> {
        let mut out = vec![0usize; xs.len()];
        self.predict_batch_into(xs, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Glm, SimpleModel};

    /// A trivial wrapper proving the trait is object-safe and the default
    /// batch prediction works.
    struct GlmClassifier {
        glm: Glm,
        name: String,
    }

    impl OnlineClassifier for GlmClassifier {
        fn name(&self) -> &str {
            &self.name
        }
        fn num_classes(&self) -> usize {
            self.glm.num_classes()
        }
        fn predict(&self, x: &[f64]) -> usize {
            SimpleModel::predict(&self.glm, x)
        }
        fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
            self.glm.predict_proba(x)
        }
        fn learn_batch(&mut self, xs: Rows<'_>, ys: &[usize]) {
            self.glm.sgd_step(xs, ys, 0.05);
        }
        fn complexity(&self) -> Complexity {
            Complexity {
                splits: 1.0,
                parameters: self.glm.num_params() as f64,
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_batch_prediction_works() {
        let mut model: Box<dyn OnlineClassifier> = Box::new(GlmClassifier {
            glm: Glm::new_zeros(2, 2),
            name: "glm".to_string(),
        });
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 / 50.0, 1.0 - i as f64 / 50.0])
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        for _ in 0..200 {
            model.learn_batch(&rows, &ys);
        }
        let preds = model.predict_batch(&rows);
        assert_eq!(preds.len(), 50);
        let mut into = vec![0usize; rows.len()];
        model.predict_batch_into(&rows, &mut into);
        assert_eq!(preds, into);
        let correct = preds.iter().zip(ys.iter()).filter(|(a, b)| a == b).count();
        assert!(correct > 40);
        assert_eq!(model.name(), "glm");
        assert_eq!(model.complexity().parameters, 3.0);
    }

    #[test]
    fn complexity_default_is_zero() {
        let c = Complexity::default();
        assert_eq!(c.splits, 0.0);
        assert_eq!(c.parameters, 0.0);
    }
}
