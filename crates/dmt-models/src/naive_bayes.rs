//! Incremental Gaussian Naive Bayes.
//!
//! Used by the VFDT (NBA) baseline: Hoeffding-tree leaves augmented with an
//! adaptive Naive Bayes classifier (Gama et al., 2003). Feature likelihoods
//! are modelled as per-class Gaussians whose mean and variance are maintained
//! incrementally with Welford's algorithm, which is numerically stable for
//! long streams.

use crate::linalg::clamp_proba;
use crate::wire::{self, Reader, WireError, Writer};
use crate::{argmax, Rows, SimpleModel};

/// Welford running estimator of mean and variance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Create an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Incorporate a new observation.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Gaussian log-density of `value` under the running estimate, with a
    /// variance floor for numerical safety.
    pub fn log_density(&self, value: f64) -> f64 {
        let var = self.variance().max(1e-6);
        let diff = value - self.mean;
        -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var)
    }

    /// Serialise the estimator (count and raw moment bits) through `w`; the
    /// inverse of [`RunningStats::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
    }

    /// Reconstruct an estimator from [`RunningStats::encode`] output.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            count: r.get_u64()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
        })
    }

    /// Merge another estimator into this one (parallel-combine formula).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
    }
}

/// Incremental Gaussian Naive Bayes classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNaiveBayes {
    /// `stats[class][feature]`
    stats: Vec<Vec<RunningStats>>,
    /// Per-class observation counts (for the prior).
    class_counts: Vec<u64>,
    num_features: usize,
    seen: u64,
}

impl GaussianNaiveBayes {
    /// Heap bytes held by the per-class statistics tables (capacity-based;
    /// see [`crate::memory::MemoryUsage`]).
    pub(crate) fn heap_bytes(&self) -> usize {
        crate::memory::vec_bytes(&self.stats)
            + self
                .stats
                .iter()
                .map(crate::memory::vec_bytes)
                .sum::<usize>()
            + crate::memory::vec_bytes(&self.class_counts)
    }

    /// Create an empty model for `num_features` features and `num_classes`
    /// classes.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "a classifier needs at least two classes");
        Self {
            stats: vec![vec![RunningStats::new(); num_features]; num_classes],
            class_counts: vec![0; num_classes],
            num_features,
            seen: 0,
        }
    }

    /// Incorporate a whole labelled batch, row by row. Semantically identical
    /// to calling [`GaussianNaiveBayes::update`] per row in order (the Welford
    /// recurrences are inherently sequential); provided so batch-level
    /// callers that already hold a gathered matrix share the same contiguous
    /// [`crate::linalg::MatRef`] entry point as the GLM kernels.
    pub fn update_batch(&mut self, xs: crate::linalg::MatRef<'_>, ys: &[usize]) {
        debug_assert_eq!(xs.rows(), ys.len());
        for (x, &y) in xs.row_iter().zip(ys.iter()) {
            self.update(x, y);
        }
    }

    /// Incorporate a single labelled instance.
    pub fn update(&mut self, x: &[f64], y: usize) {
        debug_assert!(y < self.class_counts.len());
        debug_assert_eq!(x.len(), self.num_features);
        self.class_counts[y] += 1;
        for (stat, &value) in self.stats[y].iter_mut().zip(x.iter()) {
            stat.update(value);
        }
        self.seen += 1;
    }

    /// Per-class joint log-likelihood `log P(class) + Σ log P(x_i | class)`,
    /// with Laplace-smoothed priors.
    pub fn joint_log_likelihood(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.class_counts.len()];
        self.joint_log_likelihood_into(x, &mut out);
        out
    }

    /// [`GaussianNaiveBayes::joint_log_likelihood`] written into a
    /// caller-provided buffer.
    pub fn joint_log_likelihood_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.class_counts.len(),
            "joint_log_likelihood_into: buffer length"
        );
        let total = self.seen as f64;
        let c = self.class_counts.len() as f64;
        for ((o, feature_stats), &count) in out
            .iter_mut()
            .zip(self.stats.iter())
            .zip(self.class_counts.iter())
        {
            let prior = (count as f64 + 1.0) / (total + c);
            let mut ll = prior.ln();
            if count > 0 {
                for (stat, &value) in feature_stats.iter().zip(x.iter()) {
                    ll += stat.log_density(value);
                }
            }
            *o = ll;
        }
    }

    /// Majority class observed so far (ties toward the lower index).
    pub fn majority_class(&self) -> usize {
        let counts: Vec<f64> = self.class_counts.iter().map(|&c| c as f64).collect();
        argmax(&counts)
    }

    /// Per-class observation counts.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// Number of features the model was built for.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Serialise the full model state (shape, per-class priors, per-feature
    /// Gaussians) through `w`; the inverse of [`GaussianNaiveBayes::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.num_features);
        w.put_u64(self.seen);
        w.put_u64_slice(&self.class_counts);
        for feature_stats in &self.stats {
            for stat in feature_stats {
                stat.encode(w);
            }
        }
    }

    /// Reconstruct a model from [`GaussianNaiveBayes::encode`] output,
    /// validating the class/feature shape before reading the Gaussian grid.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num_features = r.get_usize()?;
        let seen = r.get_u64()?;
        let class_counts = r.get_u64_vec()?;
        let num_classes = class_counts.len();
        if num_classes < 2 {
            return Err(wire::invalid(format!(
                "naive Bayes needs at least two classes, got {num_classes}"
            )));
        }
        // Each Gaussian is 24 bytes; checking the grid against the remaining
        // bytes up front keeps a forged shape from looping over a huge range.
        let cells = num_classes
            .checked_mul(num_features)
            .ok_or_else(|| wire::invalid("naive Bayes grid size overflows"))?;
        if cells.checked_mul(24).is_none_or(|b| b > r.remaining()) {
            return Err(wire::invalid(format!(
                "naive Bayes grid of {cells} Gaussians exceeds the remaining bytes"
            )));
        }
        let mut stats = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let mut feature_stats = Vec::with_capacity(num_features);
            for _ in 0..num_features {
                feature_stats.push(RunningStats::decode(r)?);
            }
            stats.push(feature_stats);
        }
        Ok(Self {
            stats,
            class_counts,
            num_features,
            seen,
        })
    }
}

impl SimpleModel for GaussianNaiveBayes {
    fn num_params(&self) -> usize {
        // Conditional mean + variance per (class, feature) pair plus the prior
        // counts; the paper's Table IV counts "m additional parameters" per NB
        // leaf, which corresponds to the per-feature conditionals of the
        // predicted class — we expose the full count here and let the
        // evaluation crate apply the paper's counting rule.
        self.stats.len() * self.num_features
    }

    fn num_classes(&self) -> usize {
        self.class_counts.len()
    }

    fn num_features(&self) -> usize {
        self.num_features
    }

    fn params(&self) -> &[f64] {
        &[]
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut []
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        let c = self.class_counts.len();
        assert_eq!(out.len(), c, "predict_proba_into: buffer length");
        if self.seen == 0 {
            out.fill(1.0 / c as f64);
            return;
        }
        self.joint_log_likelihood_into(x, out);
        let max = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for p in out.iter_mut() {
            *p = (*p - max).exp();
            sum += *p;
        }
        if sum > 0.0 && sum.is_finite() {
            for p in out.iter_mut() {
                *p /= sum;
            }
        }
    }

    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        // Naive Bayes has no gradient-trainable parameters; the loss is the
        // NLL of its probabilistic predictions and the gradient is zero.
        grad.fill(0.0);
        let mut loss = 0.0;
        for (x, &y) in xs.iter().zip(ys.iter()) {
            self.predict_proba_into(x, class_buf);
            loss += -clamp_proba(class_buf.get(y).copied().unwrap_or(0.0)).ln();
        }
        loss
    }

    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        _learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        let loss = self.loss_and_gradient_into(xs, ys, grad_buf, class_buf);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            self.update(x, y);
        }
        loss
    }

    fn observations_seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.update(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic example is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_single_value_has_zero_variance() {
        let mut s = RunningStats::new();
        s.update(3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = RunningStats::new();
        for &v in &values {
            all.update(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &values[..20] {
            a.update(v);
        }
        for &v in &values[20..] {
            b.update(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.update(1.0);
        a.update(2.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn log_density_peaks_at_mean() {
        let mut s = RunningStats::new();
        for v in [0.0, 1.0, 2.0, 3.0, 4.0] {
            s.update(v);
        }
        assert!(s.log_density(2.0) > s.log_density(4.5));
        assert!(s.log_density(2.0) > s.log_density(-1.0));
    }

    fn two_cluster_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        // class 0 around (0, 0), class 1 around (3, 3) — deterministic jitter.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let jitter = ((i * 37) % 100) as f64 / 100.0 - 0.5;
            if i % 2 == 0 {
                xs.push(vec![0.0 + jitter, 0.0 - jitter]);
                ys.push(0);
            } else {
                xs.push(vec![3.0 + jitter, 3.0 - jitter]);
                ys.push(1);
            }
        }
        (xs, ys)
    }

    #[test]
    fn naive_bayes_learns_two_clusters() {
        let (xs, ys) = two_cluster_data(200);
        let mut nb = GaussianNaiveBayes::new(2, 2);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            nb.update(x, y);
        }
        assert_eq!(nb.predict(&[0.1, -0.1]), 0);
        assert_eq!(nb.predict(&[3.1, 2.9]), 1);
        let p = nb.predict_proba(&[0.0, 0.0]);
        assert!(p[0] > 0.9);
    }

    #[test]
    fn untrained_model_predicts_uniform() {
        let nb = GaussianNaiveBayes::new(3, 4);
        let p = nb.predict_proba(&[1.0, 2.0, 3.0]);
        for &pi in &p {
            assert!((pi - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn majority_class_tracks_counts() {
        let mut nb = GaussianNaiveBayes::new(1, 3);
        nb.update(&[0.0], 2);
        nb.update(&[0.0], 2);
        nb.update(&[0.0], 1);
        assert_eq!(nb.majority_class(), 2);
        assert_eq!(nb.class_counts(), &[0, 1, 2]);
    }

    #[test]
    fn sgd_step_updates_counts_and_returns_pre_update_loss() {
        let mut nb = GaussianNaiveBayes::new(2, 2);
        let x0: &[f64] = &[0.0, 0.0];
        let x1: &[f64] = &[5.0, 5.0];
        let loss = nb.sgd_step(&[x0, x1], &[0, 1], 0.0);
        assert!(loss.is_finite());
        assert_eq!(nb.observations_seen(), 2);
    }

    #[test]
    fn proba_sums_to_one() {
        let (xs, ys) = two_cluster_data(50);
        let mut nb = GaussianNaiveBayes::new(2, 2);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            nb.update(x, y);
        }
        let p = nb.predict_proba(&[1.5, 1.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
