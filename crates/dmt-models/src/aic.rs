//! Akaike Information Criterion (AIC) helpers and the ε-threshold test of
//! eq. (9)–(11) in the paper.
//!
//! The DMT uses the AIC to turn the raw loss-based gains into a *robust*
//! decision: a split (or prune/replacement) is only performed when the gain
//! exceeds `k_new − k_old − log(ε)`, where `k` counts free parameters and
//! `ε ∈ [0, 1]` bounds the tolerated probability that the more complex model
//! is not actually the information-optimal one.

/// Akaike Information Criterion `AIC = 2k − 2ℓ(Θ)` where `ℓ` is the
/// log-likelihood and `k` the number of free parameters (eq. 8).
///
/// Callers in this workspace track the *negative* log-likelihood `L = −ℓ`, so
/// the convenience form `AIC = 2k + 2L` is also provided via
/// [`aic_from_nll`].
#[inline]
pub fn aic(num_params: usize, log_likelihood: f64) -> f64 {
    2.0 * num_params as f64 - 2.0 * log_likelihood
}

/// AIC computed from a negative log-likelihood (the loss tracked by DMT
/// nodes): `AIC = 2k + 2·NLL`.
#[inline]
pub fn aic_from_nll(num_params: usize, nll: f64) -> f64 {
    2.0 * num_params as f64 + 2.0 * nll
}

/// The gain threshold of eq. (11).
///
/// A candidate structural change replacing a model with `k_old` free
/// parameters by models totalling `k_new` free parameters is accepted when
/// the loss-based gain satisfies
///
/// ```text
/// G ≥ k_new − k_old − log(ε)
/// ```
///
/// For ε = 1 the test degenerates to a pure parameter-count penalty; smaller
/// ε demand proportionally larger gains (the paper default is ε = 1e-8).
#[inline]
pub fn aic_split_threshold(k_new: usize, k_old: usize, epsilon: f64) -> f64 {
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "epsilon must lie in (0, 1], got {epsilon}"
    );
    k_new as f64 - k_old as f64 - epsilon.ln()
}

/// Relative AIC evidence `exp((AIC_i − AIC_j) / 2)`: proportional to the
/// probability that model `j` (the one with the larger AIC) actually
/// minimises the information loss (§V-C).
#[inline]
pub fn relative_likelihood(aic_better: f64, aic_worse: f64) -> f64 {
    ((aic_better - aic_worse) / 2.0).exp()
}

/// Stateless helper bundling the ε hyperparameter for repeated tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AicTest {
    epsilon: f64,
}

impl AicTest {
    /// Create a test with the given ε (the paper default is `1e-8`).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must lie in (0, 1], got {epsilon}"
        );
        Self { epsilon }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Returns `true` when the observed gain justifies moving from a model
    /// with `k_old` parameters to one with `k_new` parameters.
    #[inline]
    pub fn accepts(&self, gain: f64, k_new: usize, k_old: usize) -> bool {
        gain >= aic_split_threshold(k_new, k_old, self.epsilon)
    }

    /// Threshold value for the given parameter counts.
    #[inline]
    pub fn threshold(&self, k_new: usize, k_old: usize) -> f64 {
        aic_split_threshold(k_new, k_old, self.epsilon)
    }
}

impl Default for AicTest {
    /// Paper default: ε = 1e-8.
    fn default() -> Self {
        Self::new(1e-8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aic_formula() {
        // k = 3, ℓ = -10 → AIC = 6 + 20 = 26
        assert!((aic(3, -10.0) - 26.0).abs() < 1e-12);
        assert!((aic_from_nll(3, 10.0) - 26.0).abs() < 1e-12);
    }

    #[test]
    fn aic_from_nll_agrees_with_aic() {
        for &(k, nll) in &[(1usize, 0.5f64), (10, 123.4), (0, 7.0)] {
            assert!((aic_from_nll(k, nll) - aic(k, -nll)).abs() < 1e-12);
        }
    }

    #[test]
    fn threshold_grows_as_epsilon_shrinks() {
        let loose = aic_split_threshold(10, 5, 1.0);
        let strict = aic_split_threshold(10, 5, 1e-8);
        assert!(strict > loose);
        assert!((loose - 5.0).abs() < 1e-12); // ln(1) = 0
    }

    #[test]
    fn threshold_matches_paper_formula() {
        // G >= k_C + k_C̄ - k_S - log(eps); with equal model sizes k at every
        // node, splitting doubles the parameters: threshold = k - log(eps).
        let k = 7usize;
        let eps = 1e-8;
        let t = aic_split_threshold(2 * k, k, eps);
        assert!((t - (k as f64 - eps.ln())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1]")]
    fn zero_epsilon_is_rejected() {
        let _ = aic_split_threshold(2, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must lie in (0, 1]")]
    fn epsilon_above_one_is_rejected() {
        let _ = AicTest::new(1.5);
    }

    #[test]
    fn relative_likelihood_is_one_for_equal_aic() {
        assert!((relative_likelihood(10.0, 10.0) - 1.0).abs() < 1e-12);
        assert!(relative_likelihood(5.0, 20.0) < 1.0);
    }

    #[test]
    fn aic_test_accepts_large_gains_only() {
        let test = AicTest::default();
        // Splitting a k=5 logit into two k=5 children: threshold = 5 - ln(1e-8) ≈ 23.4
        assert!(!test.accepts(10.0, 10, 5));
        assert!(test.accepts(30.0, 10, 5));
        assert!((test.threshold(10, 5) - (5.0 - 1e-8f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn pruning_direction_has_negative_parameter_delta() {
        // Collapsing a subtree (k_new < k_old) lowers the threshold, so even a
        // zero gain can justify pruning with epsilon = 1.
        let test = AicTest::new(1.0);
        assert!(test.accepts(0.0, 5, 15));
        // With the strict default epsilon the prune needs to overcome -log(eps).
        let strict = AicTest::default();
        assert!(!strict.accepts(0.0, 5, 15));
        assert!(strict.accepts(9.0, 5, 15));
    }

    #[test]
    fn default_epsilon_matches_paper() {
        assert!((AicTest::default().epsilon() - 1e-8).abs() < 1e-20);
    }
}
