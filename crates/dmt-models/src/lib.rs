//! # dmt-models
//!
//! Simple predictive models used inside the Dynamic Model Tree (DMT) and the
//! baseline incremental decision trees.
//!
//! The crate provides:
//!
//! * [`linalg`] — small dense-vector helpers (dot products, axpy, norms).
//! * [`logit`] — a binary logistic-regression (logit) model trained by SGD.
//! * [`softmax`] — a multinomial logistic-regression (softmax) model.
//! * [`glm`] — [`glm::Glm`], a dispatcher that picks the logit model for binary
//!   targets and the softmax model otherwise, exactly as proposed in §V-A of
//!   the paper.
//! * [`naive_bayes`] — incremental Gaussian Naive Bayes, used by the
//!   VFDT (NBA) baseline leaves.
//! * [`perceptron`] — an averaged online perceptron, provided as an alternative
//!   leaf model (extension).
//! * [`mod@aic`] — Akaike Information Criterion helpers and the ε-threshold test of
//!   eq. (11).
//!
//! All models implement [`SimpleModel`], the contract the Dynamic Model Tree
//! relies on: incremental SGD updates, per-batch negative log-likelihood and
//! gradients evaluated *at the current parameters* (needed for the candidate
//! loss approximation of eq. (6)–(7)).
//!
//! ```
//! use dmt_models::{Glm, SimpleModel};
//!
//! // A binary logit GLM (the DMT's leaf model for two classes): class 1
//! // exactly when the first feature exceeds 0.5.
//! let mut model = Glm::new_zeros(2, 2);
//! let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0, 0.3]).collect();
//! let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
//! let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
//!
//! // Constant-learning-rate SGD (§V-A); the returned loss is the batch's
//! // negative log-likelihood *before* the step, exactly what Algorithm 1
//! // accumulates per node.
//! let first_loss = model.sgd_step(&rows, &ys, 0.05);
//! let mut last_loss = first_loss;
//! for _ in 0..200 {
//!     last_loss = model.sgd_step(&rows, &ys, 0.05);
//! }
//! assert!(last_loss < first_loss, "training reduces the NLL");
//! assert_eq!(model.predict(&[0.9, 0.3]), 1);
//! assert_eq!(model.predict(&[0.1, 0.3]), 0);
//! assert_eq!(model.num_params(), 3); // two weights + intercept
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod aic;
pub mod glm;
pub mod linalg;
pub mod logit;
pub mod loss;
pub mod memory;
pub mod naive_bayes;
pub mod online;
pub mod perceptron;
pub mod softmax;
pub mod wire;

pub use aic::{aic, aic_split_threshold, AicTest};
pub use glm::Glm;
pub use logit::LogitModel;
pub use memory::MemoryUsage;
pub use naive_bayes::GaussianNaiveBayes;
pub use online::{Complexity, OnlineClassifier};
pub use perceptron::AveragedPerceptron;
pub use softmax::SoftmaxModel;
pub use wire::{WireError, Writer};

/// A batch of observations: one row per instance, dense `f64` features.
///
/// The Dynamic Model Tree operates batch-incrementally (the paper uses batches
/// of 0.1 % of the stream), so every model API accepts slices of rows.
pub type Rows<'a> = &'a [&'a [f64]];

/// How [`SimpleModel::learn_batch_into`] traverses a routed batch.
///
/// The Dynamic Model Tree historically performed one constant-rate SGD step
/// per instance. The batched kernel layer keeps that behaviour available as
/// the *deterministic* reference and adds a windowed mode that reads the
/// parameter vector once per window, accumulates the window's gradient sum
/// with the unrolled [`linalg`] kernels and applies a single step — the
/// first-order equivalent of the per-instance sweep (each scalar step is
/// `λ · ∇ℓ_i`, so one window step of `λ · Σ_i ∇ℓ_i` matches the sweep up to
/// O(λ²) curvature terms) at a fraction of the parameter traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// One SGD step per instance, bit-identical to calling
    /// [`SimpleModel::sgd_step_into`] on every row in order.
    Deterministic,
    /// One summed-gradient SGD step per window of `window` instances
    /// (`window` is clamped to at least 1).
    Batched {
        /// Number of instances per SGD step.
        window: usize,
    },
}

impl Default for BatchMode {
    /// The hot-path default: windowed batched updates with an 8-instance
    /// window, matching the 8-lane unroll width of the [`linalg`] kernels.
    fn default() -> Self {
        BatchMode::Batched {
            window: linalg::LANES,
        }
    }
}

/// Contract shared by all simple models that can live at a node of a
/// (Dynamic) Model Tree.
///
/// The three core operations mirror Algorithm 1 of the paper:
///
/// * [`SimpleModel::loss_and_gradient_into`] returns the *negative
///   log-likelihood* of a batch evaluated at the current parameters and writes
///   the gradient with respect to the flattened parameter vector into a
///   caller-provided buffer. The DMT accumulates both per node and per split
///   candidate.
/// * [`SimpleModel::sgd_step_into`] performs one stochastic-gradient step with
///   a constant learning rate (§V-A).
/// * [`SimpleModel::predict_proba_into`] yields class probabilities for
///   prediction and for the adaptive leaf policies of the baselines.
///
/// The `*_into` methods are the required primitives: they write into
/// caller-provided buffers so the per-instance tree update loop performs no
/// heap allocations (the buffers are owned by `dmt_core`'s `UpdateScratch`
/// and reused across instances and batches). The allocating variants
/// ([`SimpleModel::loss_and_gradient`], [`SimpleModel::predict_proba`],
/// [`SimpleModel::sgd_step`]) are provided conveniences defined in terms of
/// the `*_into` primitives, so both API families always agree bit-for-bit.
pub trait SimpleModel: Send + Sync {
    /// Number of free (estimated) parameters `k` of the model.
    ///
    /// Used by the AIC threshold of eq. (11) and by the parameter-count
    /// complexity measure of Table IV.
    fn num_params(&self) -> usize;

    /// Number of classes the model discriminates between.
    fn num_classes(&self) -> usize;

    /// Number of input features `m`.
    fn num_features(&self) -> usize;

    /// Flattened view of the current parameter vector.
    fn params(&self) -> &[f64];

    /// Mutable flattened view of the current parameter vector.
    fn params_mut(&mut self) -> &mut [f64];

    /// Class probabilities for a single instance, written into `out`
    /// (`out.len() == num_classes`).
    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]);

    /// Class-probability vector for a single instance (length = `num_classes`).
    ///
    /// Allocates; hot paths should use [`SimpleModel::predict_proba_into`].
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_classes()];
        self.predict_proba_into(x, &mut out);
        out
    }

    /// Most probable class for a single instance.
    ///
    /// The default goes through [`SimpleModel::predict_proba`] (and therefore
    /// allocates); the GLM implementations override it with an allocation-free
    /// argmax over the linear scores.
    fn predict(&self, x: &[f64]) -> usize {
        let proba = self.predict_proba(x);
        argmax(&proba)
    }

    /// Negative log-likelihood of the batch evaluated at the *current*
    /// parameters; the gradient of that loss w.r.t. the flattened parameter
    /// vector is written into `grad` (`grad.len() == num_params`, fully
    /// overwritten).
    ///
    /// Both quantities are *sums* over the batch (not means), matching the
    /// additive accumulation of Algorithm 1 lines 1–2 and 8–9.
    ///
    /// `class_buf` is caller-provided scratch of length `num_classes`; models
    /// that need per-class intermediates (softmax probabilities) use it
    /// instead of allocating.
    fn loss_and_gradient_into(
        &self,
        xs: Rows<'_>,
        ys: &[usize],
        grad: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64;

    /// Allocating convenience form of [`SimpleModel::loss_and_gradient_into`].
    fn loss_and_gradient(&self, xs: Rows<'_>, ys: &[usize]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; self.num_params()];
        let mut class_buf = vec![0.0; self.num_classes()];
        let loss = self.loss_and_gradient_into(xs, ys, &mut grad, &mut class_buf);
        (loss, grad)
    }

    /// One constant-learning-rate SGD step on the batch, using the
    /// caller-provided gradient buffer (`grad_buf.len() == num_params`) and
    /// per-class scratch (`class_buf.len() == num_classes`).
    ///
    /// Returns the batch loss *before* the update so callers can reuse it
    /// (the DMT accumulates the pre-update loss, Algorithm 1 line 1).
    fn sgd_step_into(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        learning_rate: f64,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64;

    /// Allocating convenience form of [`SimpleModel::sgd_step_into`].
    fn sgd_step(&mut self, xs: Rows<'_>, ys: &[usize], learning_rate: f64) -> f64 {
        let mut grad_buf = vec![0.0; self.num_params()];
        let mut class_buf = vec![0.0; self.num_classes()];
        self.sgd_step_into(xs, ys, learning_rate, &mut grad_buf, &mut class_buf)
    }

    /// Class probabilities for every row of a contiguous batch, written
    /// row-major into `out` (`out.len() == xs.rows() * num_classes`).
    ///
    /// Contract: bit-identical to calling
    /// [`SimpleModel::predict_proba_into`] on each row in order — batching
    /// only restructures the loops. The GLM implementations override the
    /// default per-row loop with `gemv`-style kernels over the contiguous
    /// rows.
    fn predict_proba_batch_into(&self, xs: linalg::MatRef<'_>, out: &mut [f64]) {
        let c = self.num_classes();
        debug_assert_eq!(
            out.len(),
            xs.rows() * c,
            "predict_proba_batch_into: buffer length"
        );
        for (row, out_row) in xs.row_iter().zip(out.chunks_exact_mut(c.max(1))) {
            self.predict_proba_into(row, out_row);
        }
    }

    /// Per-row loss and gradient of a contiguous batch, evaluated at the
    /// *current* parameters: `losses[i]` receives row `i`'s negative
    /// log-likelihood and `grads.row_mut(i)` its gradient
    /// (`grads` is `xs.rows() × num_params`, fully overwritten). Returns the
    /// loss sum over the batch.
    ///
    /// Contract: bit-identical to calling
    /// [`SimpleModel::loss_and_gradient_into`] on each single-row batch in
    /// order. The Dynamic Model Tree feeds both its node accumulators and its
    /// split-candidate accumulators from this gradient buffer, so one batched
    /// pass replaces one gradient evaluation per instance.
    fn loss_and_gradient_batch_into(
        &self,
        xs: linalg::MatRef<'_>,
        ys: &[usize],
        losses: &mut [f64],
        mut grads: linalg::MatMut<'_>,
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        debug_assert_eq!(losses.len(), xs.rows());
        debug_assert_eq!(grads.rows(), xs.rows());
        let mut total = 0.0;
        for i in 0..xs.rows() {
            let loss =
                self.loss_and_gradient_into(&[xs.row(i)], &[ys[i]], grads.row_mut(i), class_buf);
            losses[i] = loss;
            total += loss;
        }
        total
    }

    /// Train on a whole contiguous batch with constant learning rate; `mode`
    /// selects the traversal (see [`BatchMode`]). Returns the accumulated
    /// pre-update loss (per instance in deterministic mode, per window in
    /// batched mode).
    ///
    /// In [`BatchMode::Deterministic`] this is bit-identical to calling
    /// [`SimpleModel::sgd_step_into`] on every row in order. The default
    /// implementation always performs the deterministic sweep — models
    /// without a batched kernel (Naive Bayes, perceptron) silently fall back
    /// to it; the GLM implementations override the batched mode with windowed
    /// summed-gradient steps over the contiguous rows.
    fn learn_batch_into(
        &mut self,
        xs: linalg::MatRef<'_>,
        ys: &[usize],
        learning_rate: f64,
        _mode: BatchMode,
        grad_buf: &mut [f64],
        class_buf: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(xs.rows(), ys.len());
        let mut total = 0.0;
        for (x, &y) in xs.row_iter().zip(ys.iter()) {
            total += self.sgd_step_into(&[x], &[y], learning_rate, grad_buf, class_buf);
        }
        total
    }

    /// Total number of observations this model has been trained on.
    fn observations_seen(&self) -> u64;
}

/// Index of the maximum element; ties resolved towards the lower index.
///
/// Returns `0` for an empty slice, which is the conventional "no information"
/// prediction used throughout the workspace.
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[5.0, 1.0]), 0);
        assert_eq!(argmax(&[1.0, 2.0, 3.0, 4.0]), 3);
    }

    #[test]
    fn argmax_breaks_ties_toward_lower_index() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.2, 0.8, 0.8]), 1);
    }

    #[test]
    fn argmax_on_empty_slice_is_zero() {
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn argmax_handles_negative_values() {
        assert_eq!(argmax(&[-3.0, -1.0, -2.0]), 1);
    }
}
