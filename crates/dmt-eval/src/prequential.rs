//! Prequential (test-then-train) evaluation, §VI-A of the paper.
//!
//! The stream is processed in batches of 0.1 % of the (known or estimated)
//! stream length. Every batch is first used to *test* the classifier — the
//! batch F1 score, the model complexity and the wall-clock time of the
//! test/train iteration are recorded — and then to *train* it.
//!
//! The per-batch F1 is the support-weighted F1 over the classes present in
//! the batch, which reproduces the magnitude of the paper's Table II values
//! on the strongly imbalanced streams (e.g. Bank ≈ 0.88).

use std::time::Instant;

use dmt_models::online::OnlineClassifier;
use dmt_stream::stream::DataStream;

use crate::json::{self, FromJson, Json, JsonError, ToJson};
use crate::metrics::ConfusionMatrix;
use crate::stats::mean_std;

/// Configuration of a prequential run.
#[derive(Debug, Clone)]
pub struct PrequentialConfig {
    /// Batch size as a fraction of the stream length (paper: 0.001 = 0.1 %).
    pub batch_fraction: f64,
    /// Lower bound on the batch size (protects very small / scaled streams).
    pub min_batch_size: usize,
    /// Optional cap on the number of batches (for smoke tests).
    pub max_batches: Option<usize>,
}

impl Default for PrequentialConfig {
    fn default() -> Self {
        Self {
            batch_fraction: 0.001,
            min_batch_size: 10,
            max_batches: None,
        }
    }
}

impl PrequentialConfig {
    /// Resolve the batch size for a stream of `stream_len` instances.
    pub fn batch_size(&self, stream_len: u64) -> usize {
        let size = (stream_len as f64 * self.batch_fraction).round() as usize;
        size.max(self.min_batch_size)
    }
}

/// Per-batch measurements of one prequential run.
#[derive(Debug, Clone, Default)]
pub struct PrequentialResult {
    /// Name of the evaluated model.
    pub model: String,
    /// Name of the data stream.
    pub dataset: String,
    /// F1 score of each test batch (before training on it).
    pub f1_per_batch: Vec<f64>,
    /// Number of splits after each batch.
    pub splits_per_batch: Vec<f64>,
    /// Number of parameters after each batch.
    pub params_per_batch: Vec<f64>,
    /// Wall-clock seconds of each test/train iteration.
    pub seconds_per_batch: Vec<f64>,
    /// Overall accuracy across the whole run.
    pub overall_accuracy: f64,
    /// Overall (stream-level) F1 across the whole run.
    pub overall_f1: f64,
    /// Overall Cohen's kappa across the whole run. Chance-corrected, so an
    /// always-majority classifier scores ~0 even on strongly imbalanced
    /// streams — the accuracy-regression gate relies on this to catch models
    /// collapsing to the majority class, which raw accuracy can hide.
    pub overall_kappa: f64,
    /// Total number of instances processed.
    pub instances: u64,
}

impl PrequentialResult {
    /// Mean and standard deviation of the per-batch F1 (Table II format).
    pub fn f1_mean_std(&self) -> (f64, f64) {
        mean_std(&self.f1_per_batch)
    }

    /// Mean and standard deviation of the number of splits (Table III).
    pub fn splits_mean_std(&self) -> (f64, f64) {
        mean_std(&self.splits_per_batch)
    }

    /// Mean and standard deviation of the number of parameters (Table IV).
    pub fn params_mean_std(&self) -> (f64, f64) {
        mean_std(&self.params_per_batch)
    }

    /// Mean and standard deviation of the per-iteration time (Table V).
    pub fn time_mean_std(&self) -> (f64, f64) {
        mean_std(&self.seconds_per_batch)
    }

    /// Number of evaluation steps (batches).
    pub fn num_batches(&self) -> usize {
        self.f1_per_batch.len()
    }
}

impl ToJson for PrequentialResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("model".to_string(), self.model.to_json()),
            ("dataset".to_string(), self.dataset.to_json()),
            ("f1_per_batch".to_string(), self.f1_per_batch.to_json()),
            (
                "splits_per_batch".to_string(),
                self.splits_per_batch.to_json(),
            ),
            (
                "params_per_batch".to_string(),
                self.params_per_batch.to_json(),
            ),
            (
                "seconds_per_batch".to_string(),
                self.seconds_per_batch.to_json(),
            ),
            (
                "overall_accuracy".to_string(),
                self.overall_accuracy.to_json(),
            ),
            ("overall_f1".to_string(), self.overall_f1.to_json()),
            ("overall_kappa".to_string(), self.overall_kappa.to_json()),
            ("instances".to_string(), self.instances.to_json()),
        ])
    }
}

impl FromJson for PrequentialResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            model: json::member(value, "model")?,
            dataset: json::member(value, "dataset")?,
            f1_per_batch: json::member(value, "f1_per_batch")?,
            splits_per_batch: json::member(value, "splits_per_batch")?,
            params_per_batch: json::member(value, "params_per_batch")?,
            seconds_per_batch: json::member(value, "seconds_per_batch")?,
            overall_accuracy: json::member(value, "overall_accuracy")?,
            overall_f1: json::member(value, "overall_f1")?,
            // Absent in files written before the kappa field existed.
            overall_kappa: json::member(value, "overall_kappa").unwrap_or(0.0),
            instances: json::member(value, "instances")?,
        })
    }
}

/// Executes prequential runs.
#[derive(Debug, Clone, Default)]
pub struct PrequentialRun {
    config: PrequentialConfig,
}

impl PrequentialRun {
    /// Create a runner with the given configuration.
    pub fn new(config: PrequentialConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PrequentialConfig {
        &self.config
    }

    /// Evaluate `model` on `stream` prequentially.
    ///
    /// `stream_len_hint` overrides the stream's own length hint when given
    /// (needed for unbounded generators).
    pub fn evaluate(
        &self,
        model: &mut dyn OnlineClassifier,
        stream: &mut dyn DataStream,
        stream_len_hint: Option<u64>,
    ) -> PrequentialResult {
        let stream_len = stream_len_hint
            .or_else(|| stream.remaining_hint())
            .unwrap_or(100_000);
        let batch_size = self.config.batch_size(stream_len);
        let num_classes = model.num_classes();

        let mut result = PrequentialResult {
            model: model.name().to_string(),
            dataset: stream.schema().name.clone(),
            ..PrequentialResult::default()
        };
        let mut overall = ConfusionMatrix::new(num_classes);

        let mut batches = 0usize;
        // One predictions buffer reused across the whole run: batched models
        // (the DMT's arena descent, the ensembles' shared vote buffer) fill
        // it without a per-batch result allocation.
        let mut predictions: Vec<usize> = Vec::with_capacity(batch_size);
        while let Some(batch) = stream.next_batch(batch_size) {
            if let Some(max) = self.config.max_batches {
                if batches >= max {
                    break;
                }
            }
            let rows = batch.rows();
            let start = Instant::now();

            // Test.
            predictions.clear();
            predictions.resize(rows.len(), 0);
            model.predict_batch_into(&rows, &mut predictions);
            // Train.
            model.learn_batch(&rows, &batch.ys);

            let elapsed = start.elapsed().as_secs_f64();

            let mut cm = ConfusionMatrix::new(num_classes);
            cm.update_batch(&batch.ys, &predictions);
            overall.update_batch(&batch.ys, &predictions);

            let complexity = model.complexity();
            result.f1_per_batch.push(cm.weighted_f1());
            result.splits_per_batch.push(complexity.splits);
            result.params_per_batch.push(complexity.parameters);
            result.seconds_per_batch.push(elapsed);
            result.instances += batch.len() as u64;
            batches += 1;
        }
        result.overall_accuracy = overall.accuracy();
        result.overall_f1 = overall.weighted_f1();
        result.overall_kappa = overall.kappa();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_models::online::Complexity;
    use dmt_models::Rows;
    use dmt_stream::generators::sea::SeaGenerator;
    use dmt_stream::transform::TakeStream;

    /// A trivial majority-class learner used to exercise the evaluator
    /// without depending on the tree crates (which would be circular).
    struct MajorityLearner {
        counts: Vec<u64>,
        name: String,
    }

    impl MajorityLearner {
        fn new(num_classes: usize) -> Self {
            Self {
                counts: vec![0; num_classes],
                name: "Majority".to_string(),
            }
        }
    }

    impl OnlineClassifier for MajorityLearner {
        fn name(&self) -> &str {
            &self.name
        }
        fn num_classes(&self) -> usize {
            self.counts.len()
        }
        fn predict(&self, _x: &[f64]) -> usize {
            self.counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0)
        }
        fn predict_proba(&self, _x: &[f64]) -> Vec<f64> {
            let total: u64 = self.counts.iter().sum();
            if total == 0 {
                vec![1.0 / self.counts.len() as f64; self.counts.len()]
            } else {
                self.counts
                    .iter()
                    .map(|&c| c as f64 / total as f64)
                    .collect()
            }
        }
        fn learn_batch(&mut self, _xs: Rows<'_>, ys: &[usize]) {
            for &y in ys {
                if y < self.counts.len() {
                    self.counts[y] += 1;
                }
            }
        }
        fn complexity(&self) -> Complexity {
            Complexity {
                splits: 0.0,
                parameters: 1.0,
            }
        }
    }

    #[test]
    fn batch_size_follows_the_paper_fraction() {
        let config = PrequentialConfig::default();
        assert_eq!(config.batch_size(45_312), 45);
        assert_eq!(config.batch_size(1_000_000), 1_000);
        // The floor protects tiny streams.
        assert_eq!(config.batch_size(1_000), 10);
    }

    #[test]
    fn evaluator_processes_the_whole_stream() {
        let stream = TakeStream::new(SeaGenerator::new(0, 0.0, 1), 5_000);
        let mut stream = stream;
        let mut model = MajorityLearner::new(2);
        let runner = PrequentialRun::new(PrequentialConfig::default());
        let result = runner.evaluate(&mut model, &mut stream, None);
        assert_eq!(result.instances, 5_000);
        assert_eq!(result.num_batches(), 5_000 / 10);
        assert_eq!(result.model, "Majority");
        assert_eq!(result.dataset, "SEA");
    }

    #[test]
    fn per_batch_series_have_equal_length() {
        let mut stream = TakeStream::new(SeaGenerator::new(0, 0.0, 2), 2_000);
        let mut model = MajorityLearner::new(2);
        let runner = PrequentialRun::new(PrequentialConfig::default());
        let result = runner.evaluate(&mut model, &mut stream, None);
        let n = result.num_batches();
        assert_eq!(result.splits_per_batch.len(), n);
        assert_eq!(result.params_per_batch.len(), n);
        assert_eq!(result.seconds_per_batch.len(), n);
        assert!(result.seconds_per_batch.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn max_batches_caps_the_run() {
        let mut stream = TakeStream::new(SeaGenerator::new(0, 0.0, 3), 100_000);
        let mut model = MajorityLearner::new(2);
        let config = PrequentialConfig {
            max_batches: Some(5),
            ..PrequentialConfig::default()
        };
        let runner = PrequentialRun::new(config);
        let result = runner.evaluate(&mut model, &mut stream, None);
        assert_eq!(result.num_batches(), 5);
    }

    #[test]
    fn majority_learner_gets_nontrivial_f1_on_sea() {
        // SEA with function 0 has ~2/3 negative instances; the majority
        // learner therefore reaches a decent (but not great) F1, which
        // exercises the metric plumbing end to end.
        let mut stream = TakeStream::new(SeaGenerator::new(0, 0.0, 5), 10_000);
        let mut model = MajorityLearner::new(2);
        let runner = PrequentialRun::new(PrequentialConfig::default());
        let result = runner.evaluate(&mut model, &mut stream, None);
        let (f1_mean, f1_std) = result.f1_mean_std();
        assert!(f1_mean > 0.0 && f1_mean < 1.0, "f1 {f1_mean}");
        assert!(f1_std >= 0.0);
        assert!(result.overall_accuracy > 0.5);
    }

    #[test]
    fn majority_learner_has_chance_level_kappa() {
        // SEA is ~2:1 imbalanced, so the majority learner reaches decent raw
        // accuracy — but its kappa must sit at chance level. This separation
        // is exactly why the accuracy gate tracks both.
        let mut stream = TakeStream::new(SeaGenerator::new(0, 0.0, 5), 10_000);
        let mut model = MajorityLearner::new(2);
        let runner = PrequentialRun::new(PrequentialConfig::default());
        let result = runner.evaluate(&mut model, &mut stream, None);
        assert!(result.overall_accuracy > 0.55);
        assert!(
            result.overall_kappa.abs() < 0.05,
            "kappa {}",
            result.overall_kappa
        );
    }

    #[test]
    fn kappa_round_trips_through_json_and_tolerates_old_files() {
        let result = PrequentialResult {
            overall_kappa: 0.625,
            ..PrequentialResult::default()
        };
        let json = result.to_json();
        let back = PrequentialResult::from_json(&json).unwrap();
        assert_eq!(back.overall_kappa, 0.625);
        // A file written before the field existed parses with kappa 0.
        let Json::Obj(members) = json else {
            panic!("expected object")
        };
        let old = Json::Obj(
            members
                .into_iter()
                .filter(|(k, _)| k != "overall_kappa")
                .collect(),
        );
        let back = PrequentialResult::from_json(&old).unwrap();
        assert_eq!(back.overall_kappa, 0.0);
    }

    #[test]
    fn summaries_are_consistent_with_series() {
        let mut stream = TakeStream::new(SeaGenerator::new(0, 0.0, 7), 3_000);
        let mut model = MajorityLearner::new(2);
        let runner = PrequentialRun::new(PrequentialConfig::default());
        let result = runner.evaluate(&mut model, &mut stream, None);
        let (m, _) = result.splits_mean_std();
        assert_eq!(m, 0.0);
        let (p, _) = result.params_mean_std();
        assert_eq!(p, 1.0);
        let (t, _) = result.time_mean_std();
        assert!(t >= 0.0);
    }
}
