//! # dmt-eval
//!
//! Prequential (test-then-train) evaluation, metrics and complexity
//! accounting for the Dynamic Model Tree reproduction:
//!
//! * [`metrics`] — confusion matrix, accuracy, precision/recall, macro and
//!   weighted F1 and Cohen's kappa.
//! * [`prequential`] — the paper's evaluation protocol (§VI-A): the stream is
//!   processed in batches of 0.1 % of the data; each batch is first used for
//!   testing, then for training. Per-batch F1, split counts, parameter counts
//!   and wall-clock times are recorded.
//! * [`trace`] — sliding-window aggregation of per-batch series (window 20),
//!   the transformation behind Figure 3.
//! * [`stats`] — small mean/standard-deviation helpers used by the result
//!   tables.
//! * [`json`] — a dependency-free JSON value/parser/writer used to persist
//!   results (the environment has no crates-registry access for `serde`).
//! * [`checkpoint`] — a JSON-serialisable trace of checkpoint/restore events
//!   recorded by long evaluation runs alongside their results.
//!
//! The metrics follow §VI-D1 of the paper (macro F1 over a per-batch
//! confusion matrix):
//!
//! ```
//! use dmt_eval::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(2);
//! for (truth, predicted) in [(0, 0), (0, 0), (1, 1), (1, 0)] {
//!     cm.update(truth, predicted);
//! }
//! assert_eq!(cm.total(), 4);
//! assert!((cm.accuracy() - 0.75).abs() < 1e-12);
//! let f1 = cm.macro_f1();
//! assert!(f1 > 0.7 && f1 < 0.75, "macro F1 {f1}");
//! ```
//!
//! And results round-trip through the [`json`] module without `serde`:
//!
//! ```
//! use dmt_eval::Json;
//!
//! let parsed = Json::parse(r#"{"f1": 0.93, "splits": [1, 2]}"#).unwrap();
//! assert_eq!(parsed.get("f1").and_then(|v| v.as_f64()), Some(0.93));
//! let text = parsed.to_pretty_string();
//! assert_eq!(Json::parse(&text).unwrap(), parsed);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod json;
pub mod metrics;
pub mod prequential;
pub mod stats;
pub mod trace;

pub use checkpoint::{CheckpointEvent, CheckpointOutcome, CheckpointTrace};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use metrics::ConfusionMatrix;
pub use prequential::{PrequentialConfig, PrequentialResult, PrequentialRun};
pub use stats::{mean, mean_std, std_dev};
pub use trace::sliding_window;
