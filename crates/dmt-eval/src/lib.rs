//! # dmt-eval
//!
//! Prequential (test-then-train) evaluation, metrics and complexity
//! accounting for the Dynamic Model Tree reproduction:
//!
//! * [`metrics`] — confusion matrix, accuracy, precision/recall, macro and
//!   weighted F1 and Cohen's kappa.
//! * [`prequential`] — the paper's evaluation protocol (§VI-A): the stream is
//!   processed in batches of 0.1 % of the data; each batch is first used for
//!   testing, then for training. Per-batch F1, split counts, parameter counts
//!   and wall-clock times are recorded.
//! * [`trace`] — sliding-window aggregation of per-batch series (window 20),
//!   the transformation behind Figure 3.
//! * [`stats`] — small mean/standard-deviation helpers used by the result
//!   tables.
//! * [`json`] — a dependency-free JSON value/parser/writer used to persist
//!   results (the environment has no crates-registry access for `serde`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod prequential;
pub mod stats;
pub mod trace;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use metrics::ConfusionMatrix;
pub use prequential::{PrequentialConfig, PrequentialResult, PrequentialRun};
pub use stats::{mean, mean_std, std_dev};
pub use trace::sliding_window;
