//! Sliding-window aggregation of per-batch series.
//!
//! Figure 3 of the paper plots the mean and standard deviation of the F1
//! score and of the (log) number of splits for a sliding window of 20
//! evaluation steps. [`sliding_window`] reproduces exactly that
//! transformation.

use crate::stats::{mean, std_dev};

/// One aggregated point of a sliding-window series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPoint {
    /// Index of the last batch included in the window (1-based time step, as
    /// plotted on the x-axis of Fig. 3).
    pub time_step: usize,
    /// Window mean.
    pub mean: f64,
    /// Window standard deviation.
    pub std: f64,
}

/// Aggregate a per-batch series with a trailing window of `window` steps.
///
/// The first `window − 1` points use the partial window available so far (so
/// the output has the same length as the input), matching how streaming
/// evaluations are usually plotted.
pub fn sliding_window(series: &[f64], window: usize) -> Vec<WindowPoint> {
    assert!(window >= 1, "window must be at least 1");
    let mut out = Vec::with_capacity(series.len());
    for i in 0..series.len() {
        let start = (i + 1).saturating_sub(window);
        let slice = &series[start..=i];
        out.push(WindowPoint {
            time_step: i + 1,
            mean: mean(slice),
            std: std_dev(slice),
        });
    }
    out
}

/// Natural logarithm of a count series, with `ln(x.max(1))` to keep zero
/// counts finite — the y-axis transformation of Fig. 3 (b, d, f, h) and
/// Fig. 4.
pub fn log_counts(series: &[f64]) -> Vec<f64> {
    series.iter().map(|&v| v.max(1.0).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_one_reproduces_the_series() {
        let series = [1.0, 2.0, 3.0];
        let agg = sliding_window(&series, 1);
        assert_eq!(agg.len(), 3);
        for (point, &value) in agg.iter().zip(series.iter()) {
            assert_eq!(point.mean, value);
            assert_eq!(point.std, 0.0);
        }
        assert_eq!(agg[2].time_step, 3);
    }

    #[test]
    fn trailing_window_uses_partial_prefix() {
        let series = [1.0, 2.0, 3.0, 4.0];
        let agg = sliding_window(&series, 20);
        assert_eq!(agg[0].mean, 1.0);
        assert_eq!(agg[1].mean, 1.5);
        assert_eq!(agg[3].mean, 2.5);
    }

    #[test]
    fn full_window_slides() {
        let series = [0.0, 0.0, 10.0, 10.0];
        let agg = sliding_window(&series, 2);
        assert_eq!(agg[1].mean, 0.0);
        assert_eq!(agg[2].mean, 5.0);
        assert_eq!(agg[3].mean, 10.0);
        assert!(agg[2].std > 0.0);
        assert_eq!(agg[3].std, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = sliding_window(&[1.0], 0);
    }

    #[test]
    fn log_counts_clamps_zero() {
        let logs = log_counts(&[0.0, 1.0, std::f64::consts::E]);
        assert_eq!(logs[0], 0.0);
        assert_eq!(logs[1], 0.0);
        assert!((logs[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_empty() {
        assert!(sliding_window(&[], 20).is_empty());
        assert!(log_counts(&[]).is_empty());
    }
}
