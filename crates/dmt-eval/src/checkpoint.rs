//! JSON trace of checkpoint and restore events.
//!
//! Long prequential runs periodically snapshot their model so a crash does
//! not throw away hours of stream processing. This module records those
//! events — save, restore, or a failed attempt with its typed error rendered
//! — in an append-only [`CheckpointTrace`] that serialises through the
//! workspace's dependency-free [`Json`] module, next to the evaluation
//! results it belongs to. The trace is deliberately decoupled from the
//! snapshot machinery itself: it stores what happened and when (in stream
//! observations, the only clock a reproducible evaluation has), not model
//! state.

use crate::json::{FromJson, Json, JsonError, ToJson};

/// What happened at one checkpoint attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointOutcome {
    /// A snapshot was written and atomically moved into place.
    Saved,
    /// Model state was restored from a snapshot.
    Restored,
    /// The attempt failed; the payload is the typed error's rendering.
    Failed(String),
}

/// One checkpoint or restore event.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEvent {
    /// Display name of the model involved (e.g. `"DMT"`).
    pub model: String,
    /// Observations the model had consumed when the event fired.
    pub observations: u64,
    /// Path of the snapshot file.
    pub path: String,
    /// Size of the sealed snapshot in bytes (`0` when the attempt failed
    /// before producing one).
    pub bytes: u64,
    /// What happened.
    pub outcome: CheckpointOutcome,
}

/// An append-only log of checkpoint events for one evaluation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointTrace {
    /// The recorded events, in the order they fired.
    pub events: Vec<CheckpointEvent>,
}

impl CheckpointTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful snapshot write.
    pub fn record_save(&mut self, model: &str, observations: u64, path: &str, bytes: u64) {
        self.events.push(CheckpointEvent {
            model: model.to_string(),
            observations,
            path: path.to_string(),
            bytes,
            outcome: CheckpointOutcome::Saved,
        });
    }

    /// Record a successful restore from a snapshot.
    pub fn record_restore(&mut self, model: &str, observations: u64, path: &str, bytes: u64) {
        self.events.push(CheckpointEvent {
            model: model.to_string(),
            observations,
            path: path.to_string(),
            bytes,
            outcome: CheckpointOutcome::Restored,
        });
    }

    /// Record a failed attempt (save or restore) with its rendered error.
    pub fn record_failure(&mut self, model: &str, observations: u64, path: &str, error: &str) {
        self.events.push(CheckpointEvent {
            model: model.to_string(),
            observations,
            path: path.to_string(),
            bytes: 0,
            outcome: CheckpointOutcome::Failed(error.to_string()),
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The failed events, in order.
    pub fn failures(&self) -> impl Iterator<Item = &CheckpointEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.outcome, CheckpointOutcome::Failed(_)))
    }
}

impl ToJson for CheckpointEvent {
    fn to_json(&self) -> Json {
        let outcome = match &self.outcome {
            CheckpointOutcome::Saved => "saved",
            CheckpointOutcome::Restored => "restored",
            CheckpointOutcome::Failed(_) => "failed",
        };
        let mut members = vec![
            ("model".to_string(), Json::Str(self.model.clone())),
            (
                "observations".to_string(),
                Json::Num(self.observations as f64),
            ),
            ("path".to_string(), Json::Str(self.path.clone())),
            ("bytes".to_string(), Json::Num(self.bytes as f64)),
            ("outcome".to_string(), Json::Str(outcome.to_string())),
        ];
        if let CheckpointOutcome::Failed(error) = &self.outcome {
            members.push(("error".to_string(), Json::Str(error.clone())));
        }
        Json::Obj(members)
    }
}

impl FromJson for CheckpointEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let get_str = |key: &str| -> Result<String, JsonError> {
            json.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| JsonError {
                    message: format!("checkpoint event needs a string \"{key}\""),
                })
        };
        let get_u64 = |key: &str| -> Result<u64, JsonError> {
            json.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| JsonError {
                    message: format!("checkpoint event needs a whole number \"{key}\""),
                })
        };
        let outcome = match get_str("outcome")?.as_str() {
            "saved" => CheckpointOutcome::Saved,
            "restored" => CheckpointOutcome::Restored,
            "failed" => CheckpointOutcome::Failed(get_str("error")?),
            other => {
                return Err(JsonError {
                    message: format!("unknown checkpoint outcome \"{other}\""),
                })
            }
        };
        Ok(Self {
            model: get_str("model")?,
            observations: get_u64("observations")?,
            path: get_str("path")?,
            bytes: get_u64("bytes")?,
            outcome,
        })
    }
}

impl ToJson for CheckpointTrace {
    fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "checkpoint_events".to_string(),
            Json::Arr(self.events.iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for CheckpointTrace {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json
            .get("checkpoint_events")
            .and_then(|v| v.as_array())
            .ok_or_else(|| JsonError {
                message: "checkpoint trace needs a \"checkpoint_events\" array".to_string(),
            })?;
        let events = items
            .iter()
            .map(CheckpointEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_json() {
        let mut trace = CheckpointTrace::new();
        trace.record_save("DMT", 10_000, "run/dmt.ckpt", 4_321);
        trace.record_restore("DMT", 10_000, "run/dmt.ckpt", 4_321);
        trace.record_failure("Bagging Ens.", 12_000, "run/bag.ckpt", "checksum mismatch");
        let text = trace.to_json().to_pretty_string();
        let parsed = CheckpointTrace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.failures().count(), 1);
        let failure = parsed.failures().next().unwrap();
        assert_eq!(
            failure.outcome,
            CheckpointOutcome::Failed("checksum mismatch".to_string())
        );
        assert_eq!(failure.bytes, 0);
    }

    #[test]
    fn hostile_json_is_a_typed_error() {
        for text in [
            r#"{"checkpoint_events": [{"model": "DMT"}]}"#,
            r#"{"checkpoint_events": [{"model": "DMT", "observations": 1, "path": "p", "bytes": 0, "outcome": "exploded"}]}"#,
            r#"{"checkpoint_events": [{"model": "DMT", "observations": 1, "path": "p", "bytes": 0, "outcome": "failed"}]}"#,
            r#"{"checkpoint_events": 7}"#,
            r#"[]"#,
        ] {
            let parsed = Json::parse(text).unwrap();
            assert!(
                CheckpointTrace::from_json(&parsed).is_err(),
                "must reject: {text}"
            );
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = CheckpointTrace::new();
        assert!(trace.is_empty());
        let round = CheckpointTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(round, trace);
    }
}
