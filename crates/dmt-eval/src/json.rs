//! Dependency-free JSON value type, parser and writer.
//!
//! The build environment has no crates-registry access, so instead of
//! `serde`/`serde_json` the workspace serialises results through this small
//! module: a [`Json`] value enum, a recursive-descent parser, a
//! compact/pretty writer and the [`ToJson`]/[`FromJson`] conversion traits
//! implemented by the result types (e.g.
//! [`PrequentialResult`](crate::PrequentialResult)).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; integers up to 2⁵³ survive exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (`null` reads as NaN so that
    /// non-finite floats round-trip through their `null` encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (key, value) = &members[i];
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf literals; encode them as null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) && !(n == 0.0 && n.is_sign_negative()) {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 produces the shortest representation that round-trips
        // (including "-0" for the negative zero excluded above).
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(JsonError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("invalid number '{text}' at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Convert from a JSON value.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {json}")))
    }
}

impl FromJson for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .ok_or_else(|| JsonError::new(format!("expected integer, got {json}")))
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected string, got {json}")))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Fetch and convert a required object member.
pub fn member<T: FromJson>(json: &Json, key: &str) -> Result<T, JsonError> {
    let value = json
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing member '{key}'")))?;
    T::from_json(value).map_err(|e| JsonError::new(format!("member '{key}': {}", e.message)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) {
        assert_eq!(&Json::parse(&value.to_compact_string()).unwrap(), value);
        assert_eq!(&Json::parse(&value.to_pretty_string()).unwrap(), value);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Num(-12.75));
        roundtrip(&Json::Num(1e-30));
        roundtrip(&Json::Num(123456789.0));
        roundtrip(&Json::Str("hello".to_string()));
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-7,
            -0.0,
            0.0,
            -7.0,
        ] {
            let text = Json::Num(v).to_compact_string();
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} vs {parsed}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact_string(), "null");
        assert!(Json::Null.as_f64().unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{1}f κόσμε";
        roundtrip(&Json::Str(tricky.to_string()));
    }

    #[test]
    fn arrays_and_objects_roundtrip() {
        let value = Json::Obj(vec![
            ("name".to_string(), Json::Str("DMT".to_string())),
            (
                "scores".to_string(),
                Json::Arr(vec![Json::Num(0.5), Json::Num(0.25)]),
            ),
            ("empty_arr".to_string(), Json::Arr(vec![])),
            ("empty_obj".to_string(), Json::Obj(vec![])),
            (
                "nested".to_string(),
                Json::Obj(vec![("deep".to_string(), Json::Bool(true))]),
            ),
        ]);
        roundtrip(&value);
        assert_eq!(value.get("name").unwrap().as_str(), Some("DMT"));
        assert_eq!(value.get("scores").unwrap().as_array().unwrap().len(), 2);
        assert!(value.get("missing").is_none());
    }

    #[test]
    fn parse_accepts_whitespace_everywhere() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn member_helper_reports_missing_keys() {
        let obj = Json::Obj(vec![("x".to_string(), Json::Num(3.0))]);
        assert_eq!(member::<f64>(&obj, "x").unwrap(), 3.0);
        assert!(member::<f64>(&obj, "y").is_err());
        assert!(member::<String>(&obj, "x").is_err());
    }

    #[test]
    fn to_json_impls_cover_primitives() {
        assert_eq!(1.5f64.to_json(), Json::Num(1.5));
        assert_eq!(3u64.to_json(), Json::Num(3.0));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("s".to_json(), Json::Str("s".to_string()));
        assert_eq!(
            vec![1.0f64, 2.0].to_json(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
        );
        let vec_u64: Vec<u64> = Vec::from_json(&Json::Arr(vec![Json::Num(1.0)])).unwrap();
        assert_eq!(vec_u64, vec![1]);
    }
}
