//! Classification metrics.
//!
//! The paper reports the F1 measure because several of the evaluation streams
//! are strongly imbalanced (§VI-D1). For multiclass streams the macro-averaged
//! F1 over the classes present in the evaluation window is used; accuracy and
//! Cohen's kappa are provided for diagnostics and extension experiments.

/// An incrementally updatable confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    /// `counts[actual][predicted]`
    counts: Vec<Vec<u64>>,
    total: u64,
}

impl ConfusionMatrix {
    /// Create an empty matrix for `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            counts: vec![vec![0; num_classes]; num_classes],
            total: 0,
        }
    }

    /// Record one prediction.
    pub fn update(&mut self, actual: usize, predicted: usize) {
        let c = self.counts.len();
        if actual < c && predicted < c {
            self.counts[actual][predicted] += 1;
            self.total += 1;
        }
    }

    /// Record a batch of predictions.
    pub fn update_batch(&mut self, actuals: &[usize], predictions: &[usize]) {
        for (&a, &p) in actuals.iter().zip(predictions.iter()) {
            self.update(a, p);
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations whose true class is `class`.
    pub fn support(&self, class: usize) -> u64 {
        self.counts[class].iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / self.total as f64
    }

    /// Precision of one class (0 when the class was never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: u64 = self.counts.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / predicted as f64
        }
    }

    /// Recall of one class (0 when the class never occurred).
    pub fn recall(&self, class: usize) -> f64 {
        let actual = self.support(class);
        if actual == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / actual as f64
        }
    }

    /// F1 of one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over the classes that actually occur in the recorded
    /// data (classes without support are excluded so short evaluation windows
    /// of multiclass streams are not unfairly penalised).
    pub fn macro_f1(&self) -> f64 {
        let present: Vec<usize> = (0..self.counts.len())
            .filter(|&c| self.support(c) > 0)
            .collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().map(|&c| self.f1(c)).sum::<f64>() / present.len() as f64
    }

    /// Support-weighted F1.
    pub fn weighted_f1(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (0..self.counts.len())
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// F1 of the positive class (class 1) — the natural choice for binary
    /// streams; falls back to macro F1 for multiclass matrices.
    pub fn binary_or_macro_f1(&self) -> f64 {
        if self.counts.len() == 2 {
            // If the positive class never occurs in this window, fall back to
            // the negative class so the score remains informative.
            if self.support(1) > 0 {
                self.f1(1)
            } else {
                self.f1(0)
            }
        } else {
            self.macro_f1()
        }
    }

    /// Cohen's kappa: agreement corrected for chance.
    pub fn kappa(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let po = self.accuracy();
        let mut pe = 0.0;
        for c in 0..self.counts.len() {
            let actual = self.support(c) as f64;
            let predicted: u64 = self.counts.iter().map(|row| row[c]).sum();
            pe += (actual / n) * (predicted as f64 / n);
        }
        if (1.0 - pe).abs() < 1e-12 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect_binary() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(2);
        cm.update_batch(&[0, 0, 1, 1], &[0, 0, 1, 1]);
        cm
    }

    #[test]
    fn perfect_predictions_score_one() {
        let cm = perfect_binary();
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(1), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
        assert_eq!(cm.kappa(), 1.0);
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update_batch(&[0, 0, 1, 1], &[1, 1, 0, 0]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(0), 0.0);
        assert_eq!(cm.f1(1), 0.0);
        assert!(cm.kappa() < 0.0);
    }

    #[test]
    fn known_f1_value() {
        // TP=2, FP=1, FN=1 for class 1 -> precision 2/3, recall 2/3, F1 = 2/3.
        let mut cm = ConfusionMatrix::new(2);
        cm.update_batch(&[1, 1, 1, 0, 0], &[1, 1, 0, 1, 0]);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let mut cm = ConfusionMatrix::new(5);
        // Only classes 0 and 1 occur.
        cm.update_batch(&[0, 0, 1, 1], &[0, 0, 1, 0]);
        let macro_f1 = cm.macro_f1();
        // class 0: p=2/3, r=1 -> f1=0.8 ; class 1: p=1, r=0.5 -> f1=2/3
        assert!((macro_f1 - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn binary_or_macro_uses_positive_class_for_binary() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update_batch(&[1, 1, 0], &[1, 0, 0]);
        assert!((cm.binary_or_macro_f1() - cm.f1(1)).abs() < 1e-12);
        let mut mc = ConfusionMatrix::new(3);
        mc.update_batch(&[0, 1, 2], &[0, 1, 2]);
        assert!((mc.binary_or_macro_f1() - mc.macro_f1()).abs() < 1e-12);
    }

    #[test]
    fn binary_window_without_positives_falls_back_to_negative_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update_batch(&[0, 0, 0], &[0, 0, 1]);
        assert!(cm.binary_or_macro_f1() > 0.0);
    }

    #[test]
    fn empty_matrix_scores_zero_everywhere() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
        assert_eq!(cm.weighted_f1(), 0.0);
        assert_eq!(cm.kappa(), 0.0);
    }

    #[test]
    fn out_of_range_labels_are_ignored() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update(5, 1);
        cm.update(1, 7);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn weighted_f1_respects_support() {
        let mut cm = ConfusionMatrix::new(2);
        // 90 correct negatives, 10 all-wrong positives.
        for _ in 0..90 {
            cm.update(0, 0);
        }
        for _ in 0..10 {
            cm.update(1, 0);
        }
        assert!(cm.weighted_f1() > cm.macro_f1());
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_matrix_panics() {
        let _ = ConfusionMatrix::new(1);
    }

    #[test]
    fn kappa_is_zero_for_chance_level_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        // Predictions independent of the labels, both uniform.
        cm.update_batch(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert!(cm.kappa().abs() < 1e-12);
    }
}
