//! Small statistics helpers for the result tables (mean ± standard
//! deviation, as reported in Tables II–V of the paper).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// `(mean, std)` in one call.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    (mean(values), std_dev(values))
}

/// Format a `(mean, std)` pair the way the paper's tables do, e.g. `0.76 ± 0.20`.
pub fn format_mean_std(mean: f64, std: f64, decimals: usize) -> String {
    format!("{mean:.prec$} ± {std:.prec$}", prec = decimals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[5.0]), 5.0);
    }

    #[test]
    fn std_of_known_values() {
        // Population std of [2, 4, 4, 4, 5, 5, 7, 9] is 2.
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&values) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn mean_std_combines_both() {
        let (m, s) = mean_std(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(format_mean_std(0.761, 0.204, 2), "0.76 ± 0.20");
        assert_eq!(format_mean_std(35.66, 16.7, 1), "35.7 ± 16.7");
    }
}
