//! # dmt-ensembles
//!
//! Ensemble online learners used as reference rows in the paper's Table II:
//!
//! * [`arf`] — the Adaptive Random Forest (Gomes et al., 2017): online
//!   bagging with Poisson(6) instance weighting, per-tree random feature
//!   subspaces and per-tree ADWIN drift detectors that reset degraded
//!   members.
//! * [`bagging`] — Leveraging Bagging (Bifet, Holmes & Pfahringer, 2010):
//!   online bagging with Poisson(6) weighting and ADWIN-triggered member
//!   resets.
//!
//! As in §VI-C of the paper, both ensembles use **three** basic Hoeffding
//! trees (majority-class leaves, binary splits) as weak learners.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arf;
pub mod bagging;

pub use arf::{AdaptiveRandomForest, ArfConfig};
pub use bagging::{LeveragingBagging, LeveragingBaggingConfig};
