//! # dmt-ensembles
//!
//! Ensemble online learners used as reference rows in the paper's Table II:
//!
//! * [`arf`] — the Adaptive Random Forest (Gomes et al., 2017): online
//!   bagging with Poisson(6) instance weighting, per-tree random feature
//!   subspaces and per-tree ADWIN drift detectors that reset degraded
//!   members.
//! * [`bagging`] — Leveraging Bagging (Bifet, Holmes & Pfahringer, 2010):
//!   online bagging with Poisson(6) weighting and ADWIN-triggered member
//!   resets.
//!
//! As in §VI-C of the paper, both ensembles use **three** basic Hoeffding
//! trees (majority-class leaves, binary splits) as weak learners.
//!
//! # Parallel member training
//!
//! Both ensembles train their members **independently per batch**: every
//! member owns its tree, its detectors and a private deterministic RNG
//! stream, so `learn_batch` can fan the members out over a persistent
//! [`dmt_core::WorkerPool`] (configured via the `parallelism` field of
//! either config, shared across models via `set_worker_pool`) with results
//! **bit-identical** to a serial member-order loop. See the module docs of
//! [`bagging`] (batch-boundary drift replacement) and [`arf`] (fully
//! member-local updates) for the exact batch semantics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arf;
pub mod bagging;
pub(crate) mod snapshot;

pub use arf::{AdaptiveRandomForest, ArfConfig};
pub use bagging::{LeveragingBagging, LeveragingBaggingConfig};

/// Minimum batch size (rows) before ensemble member training fans out over
/// the worker pool; smaller batches — in particular the classic
/// instance-by-instance `learn_one` loop — always run the serial member
/// loop, whose per-member work is cheaper than a dispatch hand-shake.
/// Serial and pooled member training are bit-identical, so the cutoff is
/// purely a latency choice.
pub const MEMBER_PARALLEL_MIN_ROWS: usize = 4;

/// Deterministic seed of one ensemble member's private RNG stream: a
/// SplitMix64-style mix of the ensemble seed and the member index, so member
/// streams are decorrelated from each other and from the ensemble seed
/// itself, yet fully reproducible — the prerequisite for bit-identical
/// parallel member training.
pub(crate) fn member_stream_seed(seed: u64, member: u64) -> u64 {
    let mut z = seed ^ (member.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
