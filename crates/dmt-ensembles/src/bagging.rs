//! Leveraging Bagging (Bifet, Holmes & Pfahringer, 2010).
//!
//! Online bagging where each incoming instance is presented to every ensemble
//! member `k ~ Poisson(λ)` times with λ = 6 (more aggressive resampling than
//! Oza bagging's λ = 1). Every member carries an ADWIN detector on its
//! prequential error; when any detector fires, the *worst* member (highest
//! estimated error) is replaced by a fresh tree. Predictions are combined by
//! majority vote.
//!
//! # Batch semantics and parallel member training
//!
//! Members train **independently**: each member owns its tree, its ADWIN
//! detector and its *own* deterministic RNG stream (seeded from
//! `config.seed` and the member index), so presenting a batch to member A
//! never reads or advances member B's state. `learn_batch` therefore runs
//! member-major — each member consumes the whole batch instance-by-instance —
//! and the only cross-member step, the drift-triggered replacement of the
//! worst member, happens once at the **batch boundary** (for single-instance
//! batches this coincides with the classic per-instance rule). Member order
//! never matters, which is what makes the pooled mode bit-identical:
//! with [`Parallelism::Threads`]`(n ≥ 2)` the members fan out over a
//! persistent [`WorkerPool`] (shared with other models via
//! [`LeveragingBagging::set_worker_pool`], or created lazily) and the
//! resulting ensemble is **bit-identical** to a serial run — pinned by
//! `tests/integration_parallel.rs`.

use std::path::Path;
use std::sync::Arc;

use dmt_core::snapshot::{self as core_snapshot, SnapshotError};
use dmt_core::{Parallelism, WorkerPool};
use dmt_drift::{Adwin, DriftDetector};
use dmt_models::memory::vec_bytes;
use dmt_models::online::{Complexity, OnlineClassifier};
use dmt_models::wire::{Reader, WireError, Writer};
use dmt_models::{MemoryUsage, Rows};
use dmt_stream::schema::StreamSchema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Poisson};

use dmt_baselines::vfdt::{HoeffdingTreeClassifier, VfdtConfig};

use crate::member_stream_seed;
use crate::snapshot::{decode_rng, encode_rng, MAX_ENSEMBLE_MEMBERS, SNAPSHOT_KIND_BAGGING};

/// Configuration of the Leveraging Bagging ensemble.
#[derive(Debug, Clone)]
pub struct LeveragingBaggingConfig {
    /// Number of weak learners (the paper uses 3).
    pub ensemble_size: usize,
    /// Poisson λ of the instance weighting (canonical value 6).
    pub lambda: f64,
    /// ADWIN confidence for the per-member drift detectors.
    pub adwin_delta: f64,
    /// Configuration of the weak Hoeffding trees.
    pub base_config: VfdtConfig,
    /// Seed for the per-member Poisson sampling streams.
    pub seed: u64,
    /// How `learn_batch` trains the members: serially in member order, or
    /// fanned out over a persistent [`WorkerPool`] ([`Parallelism::Threads`]).
    /// Members are independent given their private RNG streams, so both
    /// settings are **bit-identical**; only wall-clock time differs. The
    /// default honours `DMT_PARALLELISM` (see [`Parallelism::from_env`]).
    pub parallelism: Parallelism,
}

impl Default for LeveragingBaggingConfig {
    fn default() -> Self {
        Self {
            ensemble_size: 3,
            lambda: 6.0,
            adwin_delta: 0.002,
            base_config: VfdtConfig::majority_class(),
            seed: 7,
            parallelism: Parallelism::from_env(),
        }
    }
}

/// One ensemble member: its tree, its drift detector, its private RNG stream
/// and the batch-local drift flag. Everything a member touches during batch
/// training lives here, which is what makes member training embarrassingly
/// parallel.
struct BaggingMember {
    tree: HoeffdingTreeClassifier,
    detector: Adwin,
    /// Private Poisson sampling stream; deterministic per member, survives
    /// member replacement (the tree resets, the stream continues).
    rng: StdRng,
    /// Whether this member's detector fired during the current batch;
    /// consumed by the serial batch-boundary replacement step.
    drifted: bool,
}

impl BaggingMember {
    /// Present every instance of the batch to this member: prequential error
    /// into the detector, then `k ~ Poisson(λ)` training presentations.
    /// Touches only member-local state.
    fn train_on_batch(&mut self, xs: Rows<'_>, ys: &[usize], lambda: f64) {
        let poisson = Poisson::new(lambda).expect("lambda > 0");
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let error = if self.tree.predict(x) == y { 0.0 } else { 1.0 };
            if self.detector.update(error) {
                self.drifted = true;
            }
            let k = poisson.sample(&mut self.rng) as usize;
            for _ in 0..k {
                self.tree.learn_one(x, y);
            }
        }
    }

    /// Serialise the full member state (tree, detector, RNG stream, batch
    /// drift flag); the inverse of [`BaggingMember::decode`].
    fn encode(&self, w: &mut Writer) {
        self.tree.encode(w);
        self.detector.encode(w);
        encode_rng(&self.rng, w);
        w.put_bool(self.drifted);
    }

    /// Reconstruct a member from [`BaggingMember::encode`] output, validating
    /// the tree against the ensemble schema.
    fn decode(r: &mut Reader<'_>, schema: &StreamSchema) -> Result<Self, WireError> {
        Ok(Self {
            tree: HoeffdingTreeClassifier::decode(r, schema)?,
            detector: Adwin::decode(r)?,
            rng: decode_rng(r)?,
            drifted: r.get_bool()?,
        })
    }
}

/// The Leveraging Bagging ensemble classifier.
pub struct LeveragingBagging {
    config: LeveragingBaggingConfig,
    schema: StreamSchema,
    members: Vec<BaggingMember>,
    observations: u64,
    /// Persistent worker pool of the parallel member-training path; created
    /// lazily (or injected via [`LeveragingBagging::set_worker_pool`]) and
    /// never materialised in serial mode.
    pool: Option<Arc<WorkerPool>>,
}

impl LeveragingBagging {
    /// Create an ensemble for the given schema.
    pub fn new(schema: StreamSchema, config: LeveragingBaggingConfig) -> Self {
        assert!(config.ensemble_size >= 1, "need at least one member");
        let members = (0..config.ensemble_size)
            .map(|i| BaggingMember {
                tree: HoeffdingTreeClassifier::new(schema.clone(), config.base_config.clone()),
                detector: Adwin::new(config.adwin_delta),
                rng: StdRng::seed_from_u64(member_stream_seed(config.seed, i as u64)),
                drifted: false,
            })
            .collect();
        Self {
            config,
            schema,
            members,
            observations: 0,
            pool: None,
        }
    }

    /// Share a persistent [`WorkerPool`] with this ensemble: parallel member
    /// training dispatches onto `pool`'s resident threads instead of lazily
    /// creating a private pool.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The ensemble's current worker pool, if one exists.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Number of ensemble members.
    pub fn ensemble_size(&self) -> usize {
        self.members.len()
    }

    /// Majority-vote class distribution over the members, written into the
    /// caller-provided buffers (`votes.len() == proba.len() == num_classes`)
    /// so batch prediction reuses two buffers across all rows and members:
    /// each member's probabilities land in `proba` through the trees'
    /// allocation-free [`HoeffdingTreeClassifier::predict_proba_into`] and
    /// are accumulated into `votes` — no allocation per member per row.
    fn vote_into(&self, x: &[f64], votes: &mut [f64], proba: &mut [f64]) {
        votes.fill(0.0);
        for member in &self.members {
            member.tree.predict_proba_into(x, proba);
            for (v, p) in votes.iter_mut().zip(proba.iter()) {
                *v += p;
            }
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        } else {
            votes.fill(1.0 / votes.len() as f64);
        }
    }

    /// Majority-vote class distribution over the members.
    fn vote(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        self.vote_into(x, &mut votes, &mut proba);
        votes
    }

    /// Learn one instance: Poisson-weighted presentation to every member plus
    /// the ADWIN-triggered worst-member replacement. Equivalent to a batch of
    /// one (see the module docs' batch semantics).
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        self.learn_batch(&[x], &[y]);
    }

    /// Train every member on the batch — serially, or fanned out over the
    /// worker pool. Member training is member-local, so both paths are
    /// bit-identical.
    fn train_members(&mut self, xs: Rows<'_>, ys: &[usize]) {
        let lambda = self.config.lambda;
        // More executors than members would only spawn permanently idle
        // threads — one dispatch item exists per member. Tiny batches (the
        // per-instance `learn_one` loop above all) stay on the serial member
        // loop: their member work is cheaper than a dispatch hand-shake.
        let workers = self.config.parallelism.workers().min(self.members.len());
        if workers >= 2 && xs.len() >= crate::MEMBER_PARALLEL_MIN_ROWS {
            if self.pool.is_none() {
                self.pool = Some(Arc::new(WorkerPool::new(workers)));
            }
            let pool = Arc::clone(self.pool.as_ref().expect("pool just ensured"));
            let items: Vec<&mut BaggingMember> = self.members.iter_mut().collect();
            pool.run(items, |_, member| member.train_on_batch(xs, ys, lambda));
        } else {
            for member in self.members.iter_mut() {
                member.train_on_batch(xs, ys, lambda);
            }
        }
    }

    /// The serial batch-boundary step: if any member's detector fired during
    /// the batch, replace the member with the highest estimated error by a
    /// fresh tree and detector (its RNG stream continues, keeping the
    /// replacement deterministic).
    fn replace_after_drift(&mut self) {
        let mut drifted = false;
        for member in self.members.iter_mut() {
            drifted |= member.drifted;
            member.drifted = false;
        }
        if !drifted {
            return;
        }
        let worst = self
            .members
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.detector
                    .mean()
                    .partial_cmp(&b.detector.mean())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.members[worst].tree =
            HoeffdingTreeClassifier::new(self.schema.clone(), self.config.base_config.clone());
        self.members[worst].detector = Adwin::new(self.config.adwin_delta);
    }

    /// The raw snapshot payload: kind tag, configuration, schema and every
    /// member's full state (tree, detector, RNG stream, drift flag).
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(SNAPSHOT_KIND_BAGGING);
        w.put_usize(self.config.ensemble_size);
        w.put_f64(self.config.lambda);
        w.put_f64(self.config.adwin_delta);
        self.config.base_config.encode(&mut w);
        w.put_u64(self.config.seed);
        core_snapshot::encode_schema(&self.schema, &mut w);
        w.put_u64(self.observations);
        for member in &self.members {
            member.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Serialise the full ensemble state into the sealed snapshot envelope
    /// (magic, version, CRC-32). The inverse of
    /// [`LeveragingBagging::from_snapshot_bytes`].
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        core_snapshot::seal_payload(&self.snapshot_payload())
    }

    /// Reconstruct an ensemble from [`LeveragingBagging::to_snapshot_bytes`]
    /// output.
    ///
    /// The envelope (magic, version, length, checksum) is validated first,
    /// then every structural claim of the payload: the kind tag (an Adaptive
    /// Random Forest snapshot is rejected here), hyperparameter ranges, the
    /// member count, each member tree against the schema and each RNG state.
    /// Hostile input yields a typed [`SnapshotError`], never a panic. The
    /// restored ensemble continues learning bit-identically to the saved one;
    /// its `parallelism` is re-read from the host environment
    /// ([`Parallelism::from_env`]) because thread counts are a property of
    /// the machine, not of the model.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = core_snapshot::open_payload(bytes)?;
        let mut r = Reader::new(payload);
        let kind = r.get_u8()?;
        if kind != SNAPSHOT_KIND_BAGGING {
            return Err(SnapshotError::Invalid(format!(
                "payload kind {kind} is not a Leveraging Bagging snapshot"
            )));
        }
        let ensemble_size = r.get_usize()?;
        if !(1..=MAX_ENSEMBLE_MEMBERS).contains(&ensemble_size) {
            return Err(SnapshotError::Invalid(format!(
                "ensemble of {ensemble_size} members is outside 1..={MAX_ENSEMBLE_MEMBERS}"
            )));
        }
        let lambda = r.get_f64()?;
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(SnapshotError::Invalid(
                "Poisson lambda must be a positive finite value".into(),
            ));
        }
        let adwin_delta = r.get_f64()?;
        if !(adwin_delta > 0.0 && adwin_delta < 1.0) {
            return Err(SnapshotError::Invalid(
                "ADWIN delta must lie in (0, 1)".into(),
            ));
        }
        let base_config = VfdtConfig::decode(&mut r)?;
        let seed = r.get_u64()?;
        let schema = core_snapshot::decode_schema(&mut r)?;
        let observations = r.get_u64()?;
        let mut members = Vec::new();
        for _ in 0..ensemble_size {
            members.push(BaggingMember::decode(&mut r, &schema)?);
        }
        r.expect_end()?;
        let config = LeveragingBaggingConfig {
            ensemble_size,
            lambda,
            adwin_delta,
            base_config,
            seed,
            parallelism: Parallelism::from_env(),
        };
        Ok(Self {
            config,
            schema,
            members,
            observations,
            pool: None,
        })
    }

    /// Atomically write a snapshot of the ensemble to `path` (temp file,
    /// sync, rename — a crash mid-write never leaves a torn snapshot under
    /// the final name).
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        core_snapshot::write_sealed(path.as_ref(), &self.snapshot_payload())
    }

    /// Load an ensemble snapshot written by [`LeveragingBagging::save_snapshot`].
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_snapshot_bytes(&bytes)
    }
}

impl OnlineClassifier for LeveragingBagging {
    fn name(&self) -> &str {
        "Bagging Ens."
    }

    fn num_classes(&self) -> usize {
        self.schema.num_classes
    }

    fn predict(&self, x: &[f64]) -> usize {
        dmt_models::argmax(&self.vote(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.vote(x)
    }

    fn learn_batch(&mut self, xs: Rows<'_>, ys: &[usize]) {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have the same length");
        self.observations += xs.len() as u64;
        self.train_members(xs, ys);
        self.replace_after_drift();
    }

    fn predict_batch_into(&self, xs: Rows<'_>, out: &mut [usize]) {
        // Two buffers for the whole batch (votes + per-member probabilities)
        // instead of a fresh `Vec<f64>` per row per member.
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        for (x, o) in xs.iter().zip(out.iter_mut()) {
            self.vote_into(x, &mut votes, &mut proba);
            *o = dmt_models::argmax(&votes);
        }
    }

    fn complexity(&self) -> Complexity {
        let mut total = Complexity::default();
        for member in &self.members {
            let c = member.tree.complexity();
            total.splits += c.splits;
            total.parameters += c.parameters;
        }
        total
    }

    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.members)
            + self
                .members
                .iter()
                .map(|m| m.tree.memory_bytes() + m.detector.memory_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_stream::generators::sea::SeaGenerator;
    use dmt_stream::DataStream;

    fn sea_schema() -> StreamSchema {
        StreamSchema::numeric("SEA", 3, 2)
    }

    #[test]
    fn builds_the_configured_number_of_members() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        assert_eq!(ensemble.ensemble_size(), 3);
        assert_eq!(ensemble.name(), "Bagging Ens.");
    }

    #[test]
    fn learns_sea_better_than_chance() {
        let mut ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 3);
        for _ in 0..8_000 {
            let inst = gen.next_instance().unwrap();
            ensemble.learn_one(&inst.x, inst.y);
        }
        let mut test_gen = SeaGenerator::new(0, 0.0, 31);
        let mut correct = 0;
        for _ in 0..1_000 {
            let inst = test_gen.next_instance().unwrap();
            if ensemble.predict(&inst.x) == inst.y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 1_000.0 > 0.85,
            "accuracy {}",
            correct as f64 / 1_000.0
        );
    }

    #[test]
    fn complexity_sums_members() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let c = ensemble.complexity();
        // Three untrained MC trees: 0 splits, 1 parameter each.
        assert_eq!(c.splits, 0.0);
        assert_eq!(c.parameters, 3.0);
    }

    #[test]
    fn prediction_is_a_distribution() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let p = ensemble.predict_proba(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let config = LeveragingBaggingConfig {
            ensemble_size: 0,
            ..LeveragingBaggingConfig::default()
        };
        let _ = LeveragingBagging::new(sea_schema(), config);
    }

    #[test]
    fn batch_learning_counts_observations() {
        let mut ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 5);
        let batch = gen.next_batch(100).unwrap();
        ensemble.learn_batch(&batch.rows(), &batch.ys);
        assert_eq!(ensemble.observations, 100);
    }

    #[test]
    fn snapshot_round_trips_and_continues_identically() {
        let mut original = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 51);
        for _ in 0..3_000 {
            let inst = gen.next_instance().unwrap();
            original.learn_one(&inst.x, inst.y);
        }
        let bytes = original.to_snapshot_bytes();
        let mut restored = LeveragingBagging::from_snapshot_bytes(&bytes).expect("load");
        assert_eq!(restored.observations, original.observations);
        assert_eq!(restored.ensemble_size(), original.ensemble_size());
        // Continue both on the same stream: Poisson draws, detector updates
        // and tree growth must stay bit-identical.
        for _ in 0..1_000 {
            let inst = gen.next_instance().unwrap();
            original.learn_one(&inst.x, inst.y);
            restored.learn_one(&inst.x, inst.y);
        }
        let mut probe_gen = SeaGenerator::new(0, 0.0, 52);
        for _ in 0..100 {
            let inst = probe_gen.next_instance().unwrap();
            let (pa, pb) = (
                original.predict_proba(&inst.x),
                restored.predict_proba(&inst.x),
            );
            for (va, vb) in pa.iter().zip(pb.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        assert_eq!(
            original.to_snapshot_bytes(),
            restored.to_snapshot_bytes(),
            "continued states must serialise identically"
        );
    }

    #[test]
    fn snapshot_file_round_trip_and_corruption() {
        let mut ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 53);
        for _ in 0..500 {
            let inst = gen.next_instance().unwrap();
            ensemble.learn_one(&inst.x, inst.y);
        }
        let dir = std::env::temp_dir().join("dmt-bagging-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ensemble.dmt");
        ensemble.save_snapshot(&path).expect("save");
        let restored = LeveragingBagging::load_snapshot(&path).expect("load");
        assert_eq!(restored.observations, ensemble.observations);
        std::fs::remove_file(&path).ok();

        // Corruption anywhere in the sealed bytes is a typed error.
        let bytes = ensemble.to_snapshot_bytes();
        for cut in (0..bytes.len()).step_by(97) {
            assert!(LeveragingBagging::from_snapshot_bytes(&bytes[..cut]).is_err());
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(LeveragingBagging::from_snapshot_bytes(&flipped).is_err());
    }

    #[test]
    fn learn_one_equals_a_batch_of_one() {
        // Two ensembles, one fed instance-by-instance, one fed the same
        // instances as single-row batches: identical by construction.
        let mut a = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut b = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 17);
        for _ in 0..500 {
            let inst = gen.next_instance().unwrap();
            a.learn_one(&inst.x, inst.y);
            b.learn_batch(&[inst.x.as_slice()], &[inst.y]);
        }
        let mut probe_gen = SeaGenerator::new(0, 0.0, 18);
        for _ in 0..50 {
            let inst = probe_gen.next_instance().unwrap();
            let (pa, pb) = (a.predict_proba(&inst.x), b.predict_proba(&inst.x));
            for (va, vb) in pa.iter().zip(pb.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
