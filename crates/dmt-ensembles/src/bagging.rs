//! Leveraging Bagging (Bifet, Holmes & Pfahringer, 2010).
//!
//! Online bagging where each incoming instance is presented to every ensemble
//! member `k ~ Poisson(λ)` times with λ = 6 (more aggressive resampling than
//! Oza bagging's λ = 1). Every member carries an ADWIN detector on its
//! prequential error; when the detector fires, the *worst* member is replaced
//! by a fresh tree. Predictions are combined by majority vote.

use dmt_drift::{Adwin, DriftDetector};
use dmt_models::online::{Complexity, OnlineClassifier};
use dmt_models::Rows;
use dmt_stream::schema::StreamSchema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Poisson};

use dmt_baselines::vfdt::{HoeffdingTreeClassifier, VfdtConfig};

/// Configuration of the Leveraging Bagging ensemble.
#[derive(Debug, Clone)]
pub struct LeveragingBaggingConfig {
    /// Number of weak learners (the paper uses 3).
    pub ensemble_size: usize,
    /// Poisson λ of the instance weighting (canonical value 6).
    pub lambda: f64,
    /// ADWIN confidence for the per-member drift detectors.
    pub adwin_delta: f64,
    /// Configuration of the weak Hoeffding trees.
    pub base_config: VfdtConfig,
    /// Seed for the Poisson sampling.
    pub seed: u64,
}

impl Default for LeveragingBaggingConfig {
    fn default() -> Self {
        Self {
            ensemble_size: 3,
            lambda: 6.0,
            adwin_delta: 0.002,
            base_config: VfdtConfig::majority_class(),
            seed: 7,
        }
    }
}

/// The Leveraging Bagging ensemble classifier.
pub struct LeveragingBagging {
    config: LeveragingBaggingConfig,
    schema: StreamSchema,
    members: Vec<HoeffdingTreeClassifier>,
    detectors: Vec<Adwin>,
    rng: StdRng,
    observations: u64,
}

impl LeveragingBagging {
    /// Create an ensemble for the given schema.
    pub fn new(schema: StreamSchema, config: LeveragingBaggingConfig) -> Self {
        assert!(config.ensemble_size >= 1, "need at least one member");
        let members = (0..config.ensemble_size)
            .map(|_| HoeffdingTreeClassifier::new(schema.clone(), config.base_config.clone()))
            .collect();
        let detectors = (0..config.ensemble_size)
            .map(|_| Adwin::new(config.adwin_delta))
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            schema,
            members,
            detectors,
            rng,
            observations: 0,
        }
    }

    /// Number of ensemble members.
    pub fn ensemble_size(&self) -> usize {
        self.members.len()
    }

    /// Majority-vote class distribution over the members, written into the
    /// caller-provided buffers (`votes.len() == proba.len() == num_classes`)
    /// so batch prediction reuses two buffers across all rows and members:
    /// each member's probabilities land in `proba` through the trees'
    /// allocation-free [`HoeffdingTreeClassifier::predict_proba_into`] and
    /// are accumulated into `votes` — no allocation per member per row.
    fn vote_into(&self, x: &[f64], votes: &mut [f64], proba: &mut [f64]) {
        votes.fill(0.0);
        for member in &self.members {
            member.predict_proba_into(x, proba);
            for (v, p) in votes.iter_mut().zip(proba.iter()) {
                *v += p;
            }
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        } else {
            votes.fill(1.0 / votes.len() as f64);
        }
    }

    /// Majority-vote class distribution over the members.
    fn vote(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        self.vote_into(x, &mut votes, &mut proba);
        votes
    }

    /// Learn one instance: Poisson-weighted presentation to every member plus
    /// ADWIN-triggered resets.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        self.observations += 1;
        let poisson = Poisson::new(self.config.lambda).expect("lambda > 0");
        let mut drift_member: Option<usize> = None;
        for (i, (member, detector)) in self
            .members
            .iter_mut()
            .zip(self.detectors.iter_mut())
            .enumerate()
        {
            // Prequential error of this member, fed to its ADWIN.
            let error = if member.predict(x) == y { 0.0 } else { 1.0 };
            if detector.update(error) && drift_member.is_none() {
                drift_member = Some(i);
            }
            let k = poisson.sample(&mut self.rng) as usize;
            for _ in 0..k {
                member.learn_one(x, y);
            }
        }
        if let Some(_trigger) = drift_member {
            // Replace the member with the highest estimated error.
            let worst = self
                .detectors
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.mean()
                        .partial_cmp(&b.mean())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.members[worst] =
                HoeffdingTreeClassifier::new(self.schema.clone(), self.config.base_config.clone());
            self.detectors[worst] = Adwin::new(self.config.adwin_delta);
        }
    }
}

impl OnlineClassifier for LeveragingBagging {
    fn name(&self) -> &str {
        "Bagging Ens."
    }

    fn num_classes(&self) -> usize {
        self.schema.num_classes
    }

    fn predict(&self, x: &[f64]) -> usize {
        dmt_models::argmax(&self.vote(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.vote(x)
    }

    fn learn_batch(&mut self, xs: Rows<'_>, ys: &[usize]) {
        for (x, &y) in xs.iter().zip(ys.iter()) {
            self.learn_one(x, y);
        }
    }

    fn predict_batch_into(&self, xs: Rows<'_>, out: &mut [usize]) {
        // Two buffers for the whole batch (votes + per-member probabilities)
        // instead of a fresh `Vec<f64>` per row per member.
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        for (x, o) in xs.iter().zip(out.iter_mut()) {
            self.vote_into(x, &mut votes, &mut proba);
            *o = dmt_models::argmax(&votes);
        }
    }

    fn complexity(&self) -> Complexity {
        let mut total = Complexity::default();
        for member in &self.members {
            let c = member.complexity();
            total.splits += c.splits;
            total.parameters += c.parameters;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_stream::generators::sea::SeaGenerator;
    use dmt_stream::DataStream;

    fn sea_schema() -> StreamSchema {
        StreamSchema::numeric("SEA", 3, 2)
    }

    #[test]
    fn builds_the_configured_number_of_members() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        assert_eq!(ensemble.ensemble_size(), 3);
        assert_eq!(ensemble.name(), "Bagging Ens.");
    }

    #[test]
    fn learns_sea_better_than_chance() {
        let mut ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 3);
        for _ in 0..8_000 {
            let inst = gen.next_instance().unwrap();
            ensemble.learn_one(&inst.x, inst.y);
        }
        let mut test_gen = SeaGenerator::new(0, 0.0, 31);
        let mut correct = 0;
        for _ in 0..1_000 {
            let inst = test_gen.next_instance().unwrap();
            if ensemble.predict(&inst.x) == inst.y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 1_000.0 > 0.85,
            "accuracy {}",
            correct as f64 / 1_000.0
        );
    }

    #[test]
    fn complexity_sums_members() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let c = ensemble.complexity();
        // Three untrained MC trees: 0 splits, 1 parameter each.
        assert_eq!(c.splits, 0.0);
        assert_eq!(c.parameters, 3.0);
    }

    #[test]
    fn prediction_is_a_distribution() {
        let ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let p = ensemble.predict_proba(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let config = LeveragingBaggingConfig {
            ensemble_size: 0,
            ..LeveragingBaggingConfig::default()
        };
        let _ = LeveragingBagging::new(sea_schema(), config);
    }

    #[test]
    fn batch_learning_counts_observations() {
        let mut ensemble = LeveragingBagging::new(sea_schema(), LeveragingBaggingConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 5);
        let batch = gen.next_batch(100).unwrap();
        ensemble.learn_batch(&batch.rows(), &batch.ys);
        assert_eq!(ensemble.observations, 100);
    }
}
