//! Shared pieces of the ensemble snapshot codecs.
//!
//! Both ensembles persist through the sealed envelope of
//! [`dmt_core::snapshot`] (magic, version, CRC-32, atomic file replacement)
//! and reuse its [`StreamSchema`](dmt_stream::schema::StreamSchema) codec.
//! The payloads start with a kind tag so a Leveraging Bagging snapshot can
//! never be restored as an Adaptive Random Forest (or vice versa) even
//! though both travel in the same envelope; everything after the tag is the
//! ensemble's own configuration, schema and member states. The per-member
//! codecs live next to the private member structs in [`crate::bagging`] and
//! [`crate::arf`].

use dmt_models::wire::{self, Reader, WireError, Writer};
use rand::rngs::StdRng;

/// Payload kind tag of a Leveraging Bagging snapshot.
pub(crate) const SNAPSHOT_KIND_BAGGING: u8 = 1;

/// Payload kind tag of an Adaptive Random Forest snapshot.
pub(crate) const SNAPSHOT_KIND_ARF: u8 = 2;

/// Hard ceiling on the member count accepted from a snapshot. The paper's
/// ensembles use 3 members; the bound keeps a forged header from driving the
/// member-decode loop over an absurd range.
pub(crate) const MAX_ENSEMBLE_MEMBERS: usize = 1024;

/// Serialise a member's private xoshiro256++ stream (four raw state words);
/// the inverse of [`decode_rng`].
pub(crate) fn encode_rng(rng: &StdRng, w: &mut Writer) {
    for word in rng.state() {
        w.put_u64(word);
    }
}

/// Reconstruct a member RNG from [`encode_rng`] output.
///
/// The all-zero state is the absorbing fixed point of xoshiro256++ and is
/// unreachable from any seeding path, so it can only appear in a forged
/// buffer — it is rejected rather than silently remapped.
pub(crate) fn decode_rng(r: &mut Reader<'_>) -> Result<StdRng, WireError> {
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = r.get_u64()?;
    }
    if state == [0; 4] {
        return Err(wire::invalid(
            "all-zero RNG state is unreachable from any seed",
        ));
    }
    Ok(StdRng::from_state(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn rng_state_round_trips_and_continues_identically() {
        let mut original = StdRng::seed_from_u64(42);
        // Advance so the stream is mid-sequence, not at a seed boundary.
        for _ in 0..17 {
            original.next_u64();
        }
        let mut w = Writer::new();
        encode_rng(&original, &mut w);
        let bytes = w.into_bytes();
        let mut restored = decode_rng(&mut Reader::new(&bytes)).expect("decode");
        for _ in 0..100 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let mut w = Writer::new();
        for _ in 0..4 {
            w.put_u64(0);
        }
        let bytes = w.into_bytes();
        assert!(decode_rng(&mut Reader::new(&bytes)).is_err());
    }
}
