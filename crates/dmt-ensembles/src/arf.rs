//! Adaptive Random Forest (Gomes et al., 2017).
//!
//! Online random forest for evolving data streams:
//!
//! * each member is a Hoeffding tree restricted to a random **feature
//!   subspace** (√m features by default, re-drawn when the member is reset);
//! * instances are presented to each member `k ~ Poisson(6)` times (online
//!   bagging);
//! * each member carries an ADWIN **warning** and **drift** detector on its
//!   prequential error; a warning starts a background tree, a drift signal
//!   replaces the member with its background tree (or a fresh tree when no
//!   background tree exists yet);
//! * predictions are combined by probability-weighted voting.
//!
//! Following §VI-C of the paper the forest uses 3 weak learners configured
//! like the stand-alone VFDT.
//!
//! # Parallel member training
//!
//! Unlike Leveraging Bagging, the ARF update has **no** cross-member step at
//! all — warnings, background trees and drift replacements are decided and
//! applied per member. Each member owns a private deterministic RNG stream
//! (seeded from `config.seed` and the member index) feeding its Poisson
//! weighting *and* its subspace re-draws, so members never share mutable
//! state and `learn_batch` can fan them out over a persistent
//! [`WorkerPool`] ([`Parallelism::Threads`]`(n ≥ 2)`, pool shared via
//! [`AdaptiveRandomForest::set_worker_pool`] or created lazily) with results
//! **bit-identical** to the serial member-order loop — pinned by
//! `tests/integration_parallel.rs`.

use std::path::Path;
use std::sync::Arc;

use dmt_core::snapshot::{self as core_snapshot, SnapshotError};
use dmt_core::{Parallelism, WorkerPool};
use dmt_drift::{Adwin, DriftDetector};
use dmt_models::memory::vec_bytes;
use dmt_models::online::{Complexity, OnlineClassifier};
use dmt_models::wire::{self, Reader, WireError, Writer};
use dmt_models::{MemoryUsage, Rows};
use dmt_stream::schema::StreamSchema;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_distr::{Distribution, Poisson};

use dmt_baselines::vfdt::{HoeffdingTreeClassifier, VfdtConfig};

use crate::member_stream_seed;
use crate::snapshot::{decode_rng, encode_rng, MAX_ENSEMBLE_MEMBERS, SNAPSHOT_KIND_ARF};

/// Configuration of the Adaptive Random Forest.
#[derive(Debug, Clone)]
pub struct ArfConfig {
    /// Number of trees (the paper uses 3).
    pub ensemble_size: usize,
    /// Poisson λ for online bagging (canonical value 6).
    pub lambda: f64,
    /// Number of features per subspace; `None` uses `ceil(sqrt(m))`.
    pub subspace_size: Option<usize>,
    /// ADWIN confidence of the warning detectors.
    pub warning_delta: f64,
    /// ADWIN confidence of the drift detectors.
    pub drift_delta: f64,
    /// Configuration of the weak Hoeffding trees.
    pub base_config: VfdtConfig,
    /// Seed for subspace sampling and the per-member Poisson streams.
    pub seed: u64,
    /// How `learn_batch` trains the members: serially in member order, or
    /// fanned out over a persistent [`WorkerPool`] ([`Parallelism::Threads`]).
    /// Members are fully independent, so both settings are **bit-identical**;
    /// only wall-clock time differs. The default honours `DMT_PARALLELISM`
    /// (see [`Parallelism::from_env`]).
    pub parallelism: Parallelism,
}

impl Default for ArfConfig {
    fn default() -> Self {
        Self {
            ensemble_size: 3,
            lambda: 6.0,
            subspace_size: None,
            warning_delta: 0.01,
            drift_delta: 0.001,
            base_config: VfdtConfig::majority_class(),
            seed: 13,
            parallelism: Parallelism::from_env(),
        }
    }
}

/// One forest member: a tree over a feature subspace plus its detectors,
/// optional background tree and private RNG stream. Everything a member
/// touches during batch training lives here, which is what makes member
/// training embarrassingly parallel.
struct ForestMember {
    tree: HoeffdingTreeClassifier,
    subspace: Vec<usize>,
    warning: Adwin,
    drift: Adwin,
    background: Option<(HoeffdingTreeClassifier, Vec<usize>)>,
    /// Private stream feeding this member's Poisson weighting and subspace
    /// re-draws; deterministic per member, survives member resets.
    rng: StdRng,
}

impl ForestMember {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.subspace.iter().map(|&i| x[i]).collect()
    }

    /// [`ForestMember::project`] into a reusable buffer (batch prediction
    /// reuses one projection buffer across rows and members).
    fn project_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.subspace.iter().map(|&i| x[i]));
    }

    /// Present every instance of the batch to this member: prequential error
    /// into both detectors, warning-triggered background tree, Poisson
    /// presentations and drift-triggered reset. Touches only member-local
    /// state (the subspace draws come from the member's own RNG).
    fn train_on_batch(
        &mut self,
        xs: Rows<'_>,
        ys: &[usize],
        schema: &StreamSchema,
        config: &ArfConfig,
    ) {
        let poisson = Poisson::new(config.lambda).expect("lambda > 0");
        for (x, &y) in xs.iter().zip(ys.iter()) {
            let projected = self.project(x);
            let error = if self.tree.predict(&projected) == y {
                0.0
            } else {
                1.0
            };
            let warning = self.warning.update(error);
            let drift = self.drift.update(error);

            if warning && self.background.is_none() {
                let subspace = AdaptiveRandomForest::draw_subspace(schema, config, &mut self.rng);
                let tree = HoeffdingTreeClassifier::new(
                    AdaptiveRandomForest::projected_schema(schema, &subspace),
                    config.base_config.clone(),
                );
                self.background = Some((tree, subspace));
            }

            let k = poisson.sample(&mut self.rng) as usize;
            for _ in 0..k {
                self.tree.learn_one(&projected, y);
                if let Some((background, subspace)) = self.background.as_mut() {
                    let projected_bg: Vec<f64> = subspace.iter().map(|&i| x[i]).collect();
                    background.learn_one(&projected_bg, y);
                }
            }

            if drift {
                if let Some((background, subspace)) = self.background.take() {
                    self.tree = background;
                    self.subspace = subspace;
                } else {
                    let subspace =
                        AdaptiveRandomForest::draw_subspace(schema, config, &mut self.rng);
                    self.tree = HoeffdingTreeClassifier::new(
                        AdaptiveRandomForest::projected_schema(schema, &subspace),
                        config.base_config.clone(),
                    );
                    self.subspace = subspace;
                }
                self.warning = Adwin::new(config.warning_delta);
                self.drift = Adwin::new(config.drift_delta);
            }
        }
    }

    /// Serialise the full member state (subspace, tree, both detectors, the
    /// optional background tree and the RNG stream); the inverse of
    /// [`ForestMember::decode`].
    fn encode(&self, w: &mut Writer) {
        encode_subspace(&self.subspace, w);
        self.tree.encode(w);
        self.warning.encode(w);
        self.drift.encode(w);
        match &self.background {
            None => w.put_u8(0),
            Some((tree, subspace)) => {
                w.put_u8(1);
                encode_subspace(subspace, w);
                tree.encode(w);
            }
        }
        encode_rng(&self.rng, w);
    }

    /// Reconstruct a member from [`ForestMember::encode`] output. Each
    /// subspace is validated against the full schema before its tree is
    /// decoded against the matching projected schema, so a forged subspace
    /// can neither route out of bounds nor smuggle in a mis-shaped tree.
    fn decode(r: &mut Reader<'_>, schema: &StreamSchema) -> Result<Self, WireError> {
        let subspace = decode_subspace(r, schema)?;
        let tree = HoeffdingTreeClassifier::decode(
            r,
            &AdaptiveRandomForest::projected_schema(schema, &subspace),
        )?;
        let warning = Adwin::decode(r)?;
        let drift = Adwin::decode(r)?;
        let background = match r.get_u8()? {
            0 => None,
            1 => {
                let bg_subspace = decode_subspace(r, schema)?;
                let bg_tree = HoeffdingTreeClassifier::decode(
                    r,
                    &AdaptiveRandomForest::projected_schema(schema, &bg_subspace),
                )?;
                Some((bg_tree, bg_subspace))
            }
            tag => {
                return Err(wire::invalid(format!(
                    "unknown background-tree marker {tag}"
                )))
            }
        };
        let rng = decode_rng(r)?;
        Ok(Self {
            tree,
            subspace,
            warning,
            drift,
            background,
            rng,
        })
    }
}

/// Serialise a feature subspace (sorted feature indices); the inverse of
/// [`decode_subspace`].
fn encode_subspace(subspace: &[usize], w: &mut Writer) {
    w.put_usize(subspace.len());
    for &feature in subspace {
        w.put_usize(feature);
    }
}

/// Reconstruct a feature subspace, validating it against the schema: at least
/// one feature, strictly increasing (so no duplicates) and every index in
/// bounds — the invariants [`AdaptiveRandomForest::draw_subspace`] produces.
fn decode_subspace(r: &mut Reader<'_>, schema: &StreamSchema) -> Result<Vec<usize>, WireError> {
    let len = r.get_usize()?;
    if len == 0 || len > schema.num_features() {
        return Err(wire::invalid(format!(
            "subspace of {len} features is outside 1..={}",
            schema.num_features()
        )));
    }
    let mut subspace = Vec::new();
    for _ in 0..len {
        let feature = r.get_usize()?;
        if feature >= schema.num_features() {
            return Err(wire::invalid(format!(
                "subspace selects feature {feature}, the schema has {}",
                schema.num_features()
            )));
        }
        if subspace.last().is_some_and(|&prev| prev >= feature) {
            return Err(wire::invalid(
                "subspace indices must be strictly increasing",
            ));
        }
        subspace.push(feature);
    }
    Ok(subspace)
}

/// The Adaptive Random Forest classifier.
pub struct AdaptiveRandomForest {
    config: ArfConfig,
    schema: StreamSchema,
    members: Vec<ForestMember>,
    observations: u64,
    /// Persistent worker pool of the parallel member-training path; created
    /// lazily (or injected via [`AdaptiveRandomForest::set_worker_pool`]) and
    /// never materialised in serial mode.
    pool: Option<Arc<WorkerPool>>,
}

impl AdaptiveRandomForest {
    /// Create a forest for the given schema.
    pub fn new(schema: StreamSchema, config: ArfConfig) -> Self {
        assert!(config.ensemble_size >= 1, "need at least one member");
        // Initial subspaces come from one construction-time stream (drawn in
        // member order); each member then continues on its own stream.
        let mut init_rng = StdRng::seed_from_u64(config.seed);
        let members = (0..config.ensemble_size)
            .map(|i| {
                let subspace = Self::draw_subspace(&schema, &config, &mut init_rng);
                let tree = HoeffdingTreeClassifier::new(
                    Self::projected_schema(&schema, &subspace),
                    config.base_config.clone(),
                );
                ForestMember {
                    tree,
                    subspace,
                    warning: Adwin::new(config.warning_delta),
                    drift: Adwin::new(config.drift_delta),
                    background: None,
                    rng: StdRng::seed_from_u64(member_stream_seed(config.seed, i as u64)),
                }
            })
            .collect();
        Self {
            config,
            schema,
            members,
            observations: 0,
            pool: None,
        }
    }

    /// Share a persistent [`WorkerPool`] with this forest: parallel member
    /// training dispatches onto `pool`'s resident threads instead of lazily
    /// creating a private pool.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The forest's current worker pool, if one exists.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    fn subspace_size(schema: &StreamSchema, config: &ArfConfig) -> usize {
        config
            .subspace_size
            .unwrap_or_else(|| (schema.num_features() as f64).sqrt().ceil() as usize)
            .clamp(1, schema.num_features())
    }

    fn draw_subspace(schema: &StreamSchema, config: &ArfConfig, rng: &mut StdRng) -> Vec<usize> {
        let k = Self::subspace_size(schema, config);
        let mut indices: Vec<usize> = (0..schema.num_features()).collect();
        indices.shuffle(rng);
        indices.truncate(k);
        indices.sort_unstable();
        indices
    }

    fn projected_schema(schema: &StreamSchema, subspace: &[usize]) -> StreamSchema {
        let features = subspace
            .iter()
            .map(|&i| schema.features[i].clone())
            .collect();
        StreamSchema::new(
            format!("{}-subspace", schema.name),
            features,
            schema.num_classes,
        )
    }

    /// Number of ensemble members.
    pub fn ensemble_size(&self) -> usize {
        self.members.len()
    }

    /// Probability-weighted vote over the members, written into the
    /// caller-provided buffers (`votes.len() == proba.len() == num_classes`;
    /// `projected` is subspace-projection scratch) so batch prediction
    /// reuses three buffers across all rows and members: each member's
    /// probabilities land in `proba` through the trees' allocation-free
    /// [`HoeffdingTreeClassifier::predict_proba_into`] — no allocation per
    /// member per row.
    fn vote_into(&self, x: &[f64], votes: &mut [f64], proba: &mut [f64], projected: &mut Vec<f64>) {
        votes.fill(0.0);
        for member in &self.members {
            member.project_into(x, projected);
            member.tree.predict_proba_into(projected, proba);
            for (v, p) in votes.iter_mut().zip(proba.iter()) {
                *v += p;
            }
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        } else {
            votes.fill(1.0 / votes.len() as f64);
        }
    }

    fn vote(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        self.vote_into(x, &mut votes, &mut proba, &mut Vec::new());
        votes
    }

    /// Learn one instance (a batch of one; the ARF update is member-local, so
    /// batch and instance granularity coincide exactly).
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        self.learn_batch(&[x], &[y]);
    }

    /// Train every member on the batch — serially, or fanned out over the
    /// worker pool. The ARF update has no cross-member step, so both paths
    /// are bit-identical.
    fn train_members(&mut self, xs: Rows<'_>, ys: &[usize]) {
        let schema = &self.schema;
        let config = &self.config;
        // More executors than members would only spawn permanently idle
        // threads — one dispatch item exists per member. Tiny batches (the
        // per-instance `learn_one` loop above all) stay on the serial member
        // loop: their member work is cheaper than a dispatch hand-shake.
        let workers = config.parallelism.workers().min(self.members.len());
        if workers >= 2 && xs.len() >= crate::MEMBER_PARALLEL_MIN_ROWS {
            if self.pool.is_none() {
                self.pool = Some(Arc::new(WorkerPool::new(workers)));
            }
            let pool = Arc::clone(self.pool.as_ref().expect("pool just ensured"));
            let items: Vec<&mut ForestMember> = self.members.iter_mut().collect();
            pool.run(items, |_, member| {
                member.train_on_batch(xs, ys, schema, config)
            });
        } else {
            for member in self.members.iter_mut() {
                member.train_on_batch(xs, ys, schema, config);
            }
        }
    }

    /// The raw snapshot payload: kind tag, configuration, schema and every
    /// member's full state (subspace, trees, detectors, RNG stream).
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(SNAPSHOT_KIND_ARF);
        w.put_usize(self.config.ensemble_size);
        w.put_f64(self.config.lambda);
        match self.config.subspace_size {
            None => w.put_u8(0),
            Some(k) => {
                w.put_u8(1);
                w.put_usize(k);
            }
        }
        w.put_f64(self.config.warning_delta);
        w.put_f64(self.config.drift_delta);
        self.config.base_config.encode(&mut w);
        w.put_u64(self.config.seed);
        core_snapshot::encode_schema(&self.schema, &mut w);
        w.put_u64(self.observations);
        for member in &self.members {
            member.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Serialise the full forest state into the sealed snapshot envelope
    /// (magic, version, CRC-32). The inverse of
    /// [`AdaptiveRandomForest::from_snapshot_bytes`].
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        core_snapshot::seal_payload(&self.snapshot_payload())
    }

    /// Reconstruct a forest from [`AdaptiveRandomForest::to_snapshot_bytes`]
    /// output.
    ///
    /// The envelope (magic, version, length, checksum) is validated first,
    /// then every structural claim of the payload: the kind tag (a Leveraging
    /// Bagging snapshot is rejected here), hyperparameter ranges, the member
    /// count, each subspace against the schema, each tree against its
    /// projected schema and each RNG state. Hostile input yields a typed
    /// [`SnapshotError`], never a panic. The restored forest continues
    /// learning bit-identically to the saved one; its `parallelism` is
    /// re-read from the host environment ([`Parallelism::from_env`]) because
    /// thread counts are a property of the machine, not of the model.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let payload = core_snapshot::open_payload(bytes)?;
        let mut r = Reader::new(payload);
        let kind = r.get_u8()?;
        if kind != SNAPSHOT_KIND_ARF {
            return Err(SnapshotError::Invalid(format!(
                "payload kind {kind} is not an Adaptive Random Forest snapshot"
            )));
        }
        let ensemble_size = r.get_usize()?;
        if !(1..=MAX_ENSEMBLE_MEMBERS).contains(&ensemble_size) {
            return Err(SnapshotError::Invalid(format!(
                "forest of {ensemble_size} members is outside 1..={MAX_ENSEMBLE_MEMBERS}"
            )));
        }
        let lambda = r.get_f64()?;
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(SnapshotError::Invalid(
                "Poisson lambda must be a positive finite value".into(),
            ));
        }
        let subspace_size = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_usize()?),
            tag => {
                return Err(SnapshotError::Invalid(format!(
                    "unknown subspace-size marker {tag}"
                )))
            }
        };
        let warning_delta = r.get_f64()?;
        let drift_delta = r.get_f64()?;
        for (name, delta) in [("warning", warning_delta), ("drift", drift_delta)] {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(SnapshotError::Invalid(format!(
                    "{name} ADWIN delta must lie in (0, 1)"
                )));
            }
        }
        let base_config = VfdtConfig::decode(&mut r)?;
        let seed = r.get_u64()?;
        let schema = core_snapshot::decode_schema(&mut r)?;
        let observations = r.get_u64()?;
        let mut members = Vec::new();
        for _ in 0..ensemble_size {
            members.push(ForestMember::decode(&mut r, &schema)?);
        }
        r.expect_end()?;
        let config = ArfConfig {
            ensemble_size,
            lambda,
            subspace_size,
            warning_delta,
            drift_delta,
            base_config,
            seed,
            parallelism: Parallelism::from_env(),
        };
        Ok(Self {
            config,
            schema,
            members,
            observations,
            pool: None,
        })
    }

    /// Atomically write a snapshot of the forest to `path` (temp file, sync,
    /// rename — a crash mid-write never leaves a torn snapshot under the
    /// final name).
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        core_snapshot::write_sealed(path.as_ref(), &self.snapshot_payload())
    }

    /// Load a forest snapshot written by [`AdaptiveRandomForest::save_snapshot`].
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_snapshot_bytes(&bytes)
    }
}

impl OnlineClassifier for AdaptiveRandomForest {
    fn name(&self) -> &str {
        "Forest Ens."
    }

    fn num_classes(&self) -> usize {
        self.schema.num_classes
    }

    fn predict(&self, x: &[f64]) -> usize {
        dmt_models::argmax(&self.vote(x))
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.vote(x)
    }

    fn learn_batch(&mut self, xs: Rows<'_>, ys: &[usize]) {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have the same length");
        self.observations += xs.len() as u64;
        self.train_members(xs, ys);
    }

    fn predict_batch_into(&self, xs: Rows<'_>, out: &mut [usize]) {
        // Three buffers for the whole batch (votes, per-member
        // probabilities, subspace projection) instead of fresh `Vec<f64>`s
        // per row and member.
        let mut votes = vec![0.0; self.schema.num_classes];
        let mut proba = vec![0.0; self.schema.num_classes];
        let mut projected = Vec::new();
        for (x, o) in xs.iter().zip(out.iter_mut()) {
            self.vote_into(x, &mut votes, &mut proba, &mut projected);
            *o = dmt_models::argmax(&votes);
        }
    }

    fn complexity(&self) -> Complexity {
        let mut total = Complexity::default();
        for member in &self.members {
            let c = member.tree.complexity();
            total.splits += c.splits;
            total.parameters += c.parameters;
        }
        total
    }

    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.members)
            + self
                .members
                .iter()
                .map(|m| {
                    m.tree.memory_bytes()
                        + vec_bytes(&m.subspace)
                        + m.warning.memory_bytes()
                        + m.drift.memory_bytes()
                        + m.background.as_ref().map_or(0, |(tree, subspace)| {
                            tree.memory_bytes() + vec_bytes(subspace)
                        })
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_stream::generators::sea::SeaGenerator;
    use dmt_stream::DataStream;

    fn sea_schema() -> StreamSchema {
        StreamSchema::numeric("SEA", 3, 2)
    }

    #[test]
    fn subspaces_have_sqrt_m_features_by_default() {
        let schema = StreamSchema::numeric("wide", 49, 2);
        let forest = AdaptiveRandomForest::new(schema, ArfConfig::default());
        for member in &forest.members {
            assert_eq!(member.subspace.len(), 7);
            assert!(member.subspace.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn explicit_subspace_size_is_clamped() {
        let schema = StreamSchema::numeric("narrow", 3, 2);
        let config = ArfConfig {
            subspace_size: Some(10),
            ..ArfConfig::default()
        };
        let forest = AdaptiveRandomForest::new(schema, config);
        for member in &forest.members {
            assert_eq!(member.subspace.len(), 3);
        }
    }

    #[test]
    fn learns_sea_better_than_chance() {
        let mut forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 3);
        for _ in 0..8_000 {
            let inst = gen.next_instance().unwrap();
            forest.learn_one(&inst.x, inst.y);
        }
        let mut test_gen = SeaGenerator::new(0, 0.0, 41);
        let mut correct = 0;
        for _ in 0..1_000 {
            let inst = test_gen.next_instance().unwrap();
            if forest.predict(&inst.x) == inst.y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 1_000.0 > 0.75,
            "accuracy {}",
            correct as f64 / 1_000.0
        );
    }

    #[test]
    fn prediction_is_a_distribution() {
        let forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let p = forest.predict_proba(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(forest.name(), "Forest Ens.");
    }

    #[test]
    fn complexity_sums_over_members() {
        let forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        assert_eq!(forest.complexity().parameters, 3.0);
        assert_eq!(forest.complexity().splits, 0.0);
    }

    #[test]
    fn adapts_after_concept_switch() {
        let mut forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen_a = SeaGenerator::new(0, 0.0, 9);
        for _ in 0..6_000 {
            let inst = gen_a.next_instance().unwrap();
            forest.learn_one(&inst.x, inst.y);
        }
        let mut gen_b = SeaGenerator::new(2, 0.0, 10);
        for _ in 0..6_000 {
            let inst = gen_b.next_instance().unwrap();
            forest.learn_one(&inst.x, inst.y);
        }
        let mut test_gen = SeaGenerator::new(2, 0.0, 11);
        let mut correct = 0;
        for _ in 0..1_000 {
            let inst = test_gen.next_instance().unwrap();
            if forest.predict(&inst.x) == inst.y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / 1_000.0 > 0.7,
            "post-drift accuracy {}",
            correct as f64 / 1_000.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let config = ArfConfig {
            ensemble_size: 0,
            ..ArfConfig::default()
        };
        let _ = AdaptiveRandomForest::new(sea_schema(), config);
    }

    #[test]
    fn snapshot_round_trips_and_continues_identically() {
        let mut original = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 61);
        // Train through a concept switch so warnings, background trees and
        // member resets all have a chance to be live state in the snapshot.
        for _ in 0..3_000 {
            let inst = gen.next_instance().unwrap();
            original.learn_one(&inst.x, inst.y);
        }
        let mut gen2 = SeaGenerator::new(2, 0.0, 62);
        for _ in 0..2_000 {
            let inst = gen2.next_instance().unwrap();
            original.learn_one(&inst.x, inst.y);
        }
        let bytes = original.to_snapshot_bytes();
        let mut restored = AdaptiveRandomForest::from_snapshot_bytes(&bytes).expect("load");
        assert_eq!(restored.observations, original.observations);
        for _ in 0..1_000 {
            let inst = gen2.next_instance().unwrap();
            original.learn_one(&inst.x, inst.y);
            restored.learn_one(&inst.x, inst.y);
        }
        let mut probe_gen = SeaGenerator::new(2, 0.0, 63);
        for _ in 0..100 {
            let inst = probe_gen.next_instance().unwrap();
            let (pa, pb) = (
                original.predict_proba(&inst.x),
                restored.predict_proba(&inst.x),
            );
            for (va, vb) in pa.iter().zip(pb.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        assert_eq!(
            original.to_snapshot_bytes(),
            restored.to_snapshot_bytes(),
            "continued states must serialise identically"
        );
    }

    #[test]
    fn snapshot_rejects_corruption_and_the_wrong_kind() {
        let mut forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 64);
        for _ in 0..500 {
            let inst = gen.next_instance().unwrap();
            forest.learn_one(&inst.x, inst.y);
        }
        let bytes = forest.to_snapshot_bytes();
        for cut in (0..bytes.len()).step_by(97) {
            assert!(AdaptiveRandomForest::from_snapshot_bytes(&bytes[..cut]).is_err());
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(AdaptiveRandomForest::from_snapshot_bytes(&flipped).is_err());

        // A bagging snapshot is a sealed, checksum-valid buffer — but the
        // kind tag must still keep it out of the forest loader (and vice
        // versa).
        let bagging =
            crate::LeveragingBagging::new(sea_schema(), crate::LeveragingBaggingConfig::default());
        let foreign = bagging.to_snapshot_bytes();
        match AdaptiveRandomForest::from_snapshot_bytes(&foreign) {
            Ok(_) => panic!("a bagging snapshot must not load as a forest"),
            Err(e) => assert!(format!("{e}").contains("kind"), "unexpected error: {e}"),
        }
        match crate::LeveragingBagging::from_snapshot_bytes(&forest.to_snapshot_bytes()) {
            Ok(_) => panic!("a forest snapshot must not load as bagging"),
            Err(e) => assert!(format!("{e}").contains("kind"), "unexpected error: {e}"),
        }
    }

    #[test]
    fn snapshot_file_round_trip() {
        let mut forest = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 65);
        for _ in 0..500 {
            let inst = gen.next_instance().unwrap();
            forest.learn_one(&inst.x, inst.y);
        }
        let dir = std::env::temp_dir().join("dmt-arf-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forest.dmt");
        forest.save_snapshot(&path).expect("save");
        let restored = AdaptiveRandomForest::load_snapshot(&path).expect("load");
        assert_eq!(restored.observations, forest.observations);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn learn_one_equals_a_batch_of_one() {
        // The ARF update is member-local with no batch-boundary step, so
        // feeding instances one by one must equal feeding them as
        // single-row batches bit-for-bit.
        let mut a = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut b = AdaptiveRandomForest::new(sea_schema(), ArfConfig::default());
        let mut gen = SeaGenerator::new(0, 0.0, 23);
        for _ in 0..500 {
            let inst = gen.next_instance().unwrap();
            a.learn_one(&inst.x, inst.y);
            b.learn_batch(&[inst.x.as_slice()], &[inst.y]);
        }
        let mut probe_gen = SeaGenerator::new(0, 0.0, 24);
        for _ in 0..50 {
            let inst = probe_gen.next_instance().unwrap();
            let (pa, pb) = (a.predict_proba(&inst.x), b.predict_proba(&inst.x));
            for (va, vb) in pa.iter().zip(pb.iter()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
