//! The model zoo: build any classifier evaluated in the paper by name.
//!
//! The reproduction harness iterates over [`ALL_MODELS`] (or
//! [`STANDALONE_MODELS`] for the complexity tables, which exclude the
//! ensembles exactly like Tables III and IV do) and calls [`build_model`]
//! once per data set, so every run starts from a fresh, identically
//! configured classifier — mirroring §VI-C of the paper.
//!
//! For long runs the zoo also offers crash-safe **checkpointing**:
//! [`build_zoo_model`] returns a concretely typed [`ZooModel`] whose
//! [`ZooModel::checkpoint`] / [`ZooModel::restore`] round-trip the full model
//! state through the sealed snapshot envelope of [`dmt_core::snapshot`]
//! (CRC-32-validated, atomically replaced on disk). The Dynamic Model Tree,
//! both VFDT variants and both ensembles restore **bit-identically** — the
//! restored model predicts and keeps learning exactly like the saved one.
//! Kinds without a snapshot codec yet (HT-Ada, EFDT, FIMT-DD) report a typed
//! [`CheckpointError::Unsupported`] instead of failing at some later point.

use std::path::Path;
use std::sync::Arc;

use dmt_baselines::{
    EfdtClassifier, EfdtConfig, FimtDdClassifier, FimtDdConfig, HatConfig, HoeffdingAdaptiveTree,
    HoeffdingTreeClassifier, VfdtConfig,
};
use dmt_core::snapshot::{self as core_snapshot, SnapshotError};
use dmt_core::{DmtConfig, DynamicModelTree, WorkerPool};
use dmt_ensembles::{AdaptiveRandomForest, ArfConfig, LeveragingBagging, LeveragingBaggingConfig};
use dmt_models::wire::{Reader, Writer};
use dmt_models::OnlineClassifier;
use dmt_stream::StreamSchema;

/// The classifiers evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Dynamic Model Tree (the paper's contribution).
    Dmt,
    /// FIMT-DD re-implemented as a classifier.
    FimtDd,
    /// VFDT with majority-class leaves.
    VfdtMc,
    /// VFDT with adaptive Naive Bayes leaves.
    VfdtNba,
    /// Hoeffding Adaptive Tree.
    HtAda,
    /// Extremely Fast Decision Tree.
    Efdt,
    /// Adaptive Random Forest (3 weak learners).
    ForestEnsemble,
    /// Leveraging Bagging (3 weak learners).
    BaggingEnsemble,
}

impl ModelKind {
    /// The display name used in the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelKind::Dmt => "DMT (ours)",
            ModelKind::FimtDd => "FIMT-DD",
            ModelKind::VfdtMc => "VFDT (MC)",
            ModelKind::VfdtNba => "VFDT (NBA)",
            ModelKind::HtAda => "HT-ADA",
            ModelKind::Efdt => "EFDT",
            ModelKind::ForestEnsemble => "Forest Ens.",
            ModelKind::BaggingEnsemble => "Bagging Ens.",
        }
    }

    /// Whether this model is one of the ensemble reference rows (separated by
    /// a horizontal line in Table II).
    pub fn is_ensemble(&self) -> bool {
        matches!(self, ModelKind::ForestEnsemble | ModelKind::BaggingEnsemble)
    }
}

/// All models of Table II, in the paper's row order.
pub const ALL_MODELS: [ModelKind; 8] = [
    ModelKind::Dmt,
    ModelKind::FimtDd,
    ModelKind::VfdtMc,
    ModelKind::VfdtNba,
    ModelKind::HtAda,
    ModelKind::Efdt,
    ModelKind::ForestEnsemble,
    ModelKind::BaggingEnsemble,
];

/// The stand-alone models of Tables III–V (no ensembles).
pub const STANDALONE_MODELS: [ModelKind; 6] = [
    ModelKind::Dmt,
    ModelKind::FimtDd,
    ModelKind::VfdtMc,
    ModelKind::VfdtNba,
    ModelKind::HtAda,
    ModelKind::Efdt,
];

/// Build a freshly configured classifier of the given kind for a stream
/// schema, using the hyperparameters of §V-D / §VI-C of the paper.
pub fn build_model(kind: ModelKind, schema: &StreamSchema, seed: u64) -> Box<dyn OnlineClassifier> {
    build_zoo_model(kind, schema, seed).into_boxed()
}

/// Build a concretely typed zoo model — like [`build_model`], but keeping the
/// concrete type so the model can be checkpointed and restored.
pub fn build_zoo_model(kind: ModelKind, schema: &StreamSchema, seed: u64) -> ZooModel {
    match kind {
        ModelKind::Dmt => ZooModel::Dmt(DynamicModelTree::new(
            schema.clone(),
            DmtConfig {
                seed,
                ..DmtConfig::default()
            },
        )),
        ModelKind::FimtDd => ZooModel::FimtDd(FimtDdClassifier::new(
            schema.clone(),
            FimtDdConfig::default(),
        )),
        ModelKind::VfdtMc => ZooModel::VfdtMc(HoeffdingTreeClassifier::new(
            schema.clone(),
            VfdtConfig::majority_class(),
        )),
        ModelKind::VfdtNba => ZooModel::VfdtNba(HoeffdingTreeClassifier::new(
            schema.clone(),
            VfdtConfig::naive_bayes_adaptive(),
        )),
        ModelKind::HtAda => ZooModel::HtAda(HoeffdingAdaptiveTree::new(
            schema.clone(),
            HatConfig::default(),
        )),
        ModelKind::Efdt => {
            ZooModel::Efdt(EfdtClassifier::new(schema.clone(), EfdtConfig::default()))
        }
        ModelKind::ForestEnsemble => ZooModel::Forest(AdaptiveRandomForest::new(
            schema.clone(),
            ArfConfig {
                seed,
                ..ArfConfig::default()
            },
        )),
        ModelKind::BaggingEnsemble => ZooModel::Bagging(LeveragingBagging::new(
            schema.clone(),
            LeveragingBaggingConfig {
                seed,
                ..LeveragingBaggingConfig::default()
            },
        )),
    }
}

/// Why a zoo checkpoint or restore failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The model kind has no snapshot codec yet (HT-Ada, EFDT, FIMT-DD).
    Unsupported(ModelKind),
    /// The underlying snapshot machinery failed (I/O, corruption, forged
    /// state, version skew).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Unsupported(kind) => write!(
                f,
                "{} does not support checkpointing yet",
                kind.display_name()
            ),
            CheckpointError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Unsupported(_) => None,
            CheckpointError::Snapshot(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

/// A concretely typed model from the zoo.
///
/// [`build_model`] erases the concrete type behind `Box<dyn
/// OnlineClassifier>`, which is all the evaluation harness needs; this enum
/// keeps the type so long runs can [`checkpoint`](ZooModel::checkpoint) the
/// model mid-stream and [`restore`](ZooModel::restore) it bit-identically
/// after a crash.
#[allow(clippy::large_enum_variant)]
pub enum ZooModel {
    /// Dynamic Model Tree.
    Dmt(DynamicModelTree),
    /// FIMT-DD as a classifier.
    FimtDd(FimtDdClassifier),
    /// VFDT with majority-class leaves.
    VfdtMc(HoeffdingTreeClassifier),
    /// VFDT with adaptive Naive Bayes leaves.
    VfdtNba(HoeffdingTreeClassifier),
    /// Hoeffding Adaptive Tree.
    HtAda(HoeffdingAdaptiveTree),
    /// Extremely Fast Decision Tree.
    Efdt(EfdtClassifier),
    /// Adaptive Random Forest.
    Forest(AdaptiveRandomForest),
    /// Leveraging Bagging.
    Bagging(LeveragingBagging),
}

impl ZooModel {
    /// The kind this model was built as.
    pub fn kind(&self) -> ModelKind {
        match self {
            ZooModel::Dmt(_) => ModelKind::Dmt,
            ZooModel::FimtDd(_) => ModelKind::FimtDd,
            ZooModel::VfdtMc(_) => ModelKind::VfdtMc,
            ZooModel::VfdtNba(_) => ModelKind::VfdtNba,
            ZooModel::HtAda(_) => ModelKind::HtAda,
            ZooModel::Efdt(_) => ModelKind::Efdt,
            ZooModel::Forest(_) => ModelKind::ForestEnsemble,
            ZooModel::Bagging(_) => ModelKind::BaggingEnsemble,
        }
    }

    /// Whether checkpoint/restore is implemented for this kind.
    pub fn supports_checkpoint(kind: ModelKind) -> bool {
        !matches!(kind, ModelKind::HtAda | ModelKind::Efdt | ModelKind::FimtDd)
    }

    /// Borrow the model as a classifier.
    pub fn as_classifier(&self) -> &dyn OnlineClassifier {
        match self {
            ZooModel::Dmt(m) => m,
            ZooModel::FimtDd(m) => m,
            ZooModel::VfdtMc(m) | ZooModel::VfdtNba(m) => m,
            ZooModel::HtAda(m) => m,
            ZooModel::Efdt(m) => m,
            ZooModel::Forest(m) => m,
            ZooModel::Bagging(m) => m,
        }
    }

    /// Mutably borrow the model as a classifier.
    pub fn as_classifier_mut(&mut self) -> &mut dyn OnlineClassifier {
        match self {
            ZooModel::Dmt(m) => m,
            ZooModel::FimtDd(m) => m,
            ZooModel::VfdtMc(m) | ZooModel::VfdtNba(m) => m,
            ZooModel::HtAda(m) => m,
            ZooModel::Efdt(m) => m,
            ZooModel::Forest(m) => m,
            ZooModel::Bagging(m) => m,
        }
    }

    /// Resident heap bytes of the model, via
    /// [`OnlineClassifier::memory_bytes`]. Every zoo kind implements the
    /// accounting, so this is never the trait's "unaccounted" zero.
    pub fn memory_bytes(&self) -> usize {
        self.as_classifier().memory_bytes()
    }

    /// Share a persistent [`WorkerPool`] with the model, if its kind can use
    /// one (the DMT tree and both ensembles dispatch subtree/member work to
    /// it; the baseline trees are single-threaded and ignore the call).
    /// Lets a registry run thousands of tenants over one set of resident
    /// threads instead of each model lazily spawning its own.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        match self {
            ZooModel::Dmt(m) => m.set_worker_pool(pool),
            ZooModel::Forest(m) => m.set_worker_pool(pool),
            ZooModel::Bagging(m) => m.set_worker_pool(pool),
            ZooModel::FimtDd(_)
            | ZooModel::VfdtMc(_)
            | ZooModel::VfdtNba(_)
            | ZooModel::HtAda(_)
            | ZooModel::Efdt(_) => {}
        }
    }

    /// Box the model behind the classifier trait (what [`build_model`]
    /// returns).
    pub fn into_boxed(self) -> Box<dyn OnlineClassifier> {
        match self {
            ZooModel::Dmt(m) => Box::new(m),
            ZooModel::FimtDd(m) => Box::new(m),
            ZooModel::VfdtMc(m) | ZooModel::VfdtNba(m) => Box::new(m),
            ZooModel::HtAda(m) => Box::new(m),
            ZooModel::Efdt(m) => Box::new(m),
            ZooModel::Forest(m) => Box::new(m),
            ZooModel::Bagging(m) => Box::new(m),
        }
    }

    /// Atomically write a crash-safe checkpoint of the model to `path`.
    ///
    /// Kinds without a snapshot codec return
    /// [`CheckpointError::Unsupported`] without touching the filesystem.
    pub fn checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<(), CheckpointError> {
        match self {
            ZooModel::Dmt(m) => m.save_snapshot(path)?,
            ZooModel::Forest(m) => m.save_snapshot(path)?,
            ZooModel::Bagging(m) => m.save_snapshot(path)?,
            ZooModel::VfdtMc(m) | ZooModel::VfdtNba(m) => {
                let mut w = Writer::new();
                m.encode(&mut w);
                core_snapshot::write_sealed(path.as_ref(), w.as_bytes())?;
            }
            ZooModel::HtAda(_) | ZooModel::Efdt(_) | ZooModel::FimtDd(_) => {
                return Err(CheckpointError::Unsupported(self.kind()))
            }
        }
        Ok(())
    }

    /// Restore a model of the given kind from a checkpoint written by
    /// [`ZooModel::checkpoint`].
    ///
    /// `schema` supplies the stream schema for kinds whose snapshot does not
    /// embed one (the VFDT variants); the DMT and ensemble snapshots carry
    /// their own schema. Corrupted, truncated or forged checkpoints yield a
    /// typed error — never a panic.
    pub fn restore<P: AsRef<Path>>(
        kind: ModelKind,
        schema: &StreamSchema,
        path: P,
    ) -> Result<Self, CheckpointError> {
        match kind {
            ModelKind::Dmt => Ok(ZooModel::Dmt(DynamicModelTree::load_snapshot(path)?)),
            ModelKind::ForestEnsemble => {
                Ok(ZooModel::Forest(AdaptiveRandomForest::load_snapshot(path)?))
            }
            ModelKind::BaggingEnsemble => {
                Ok(ZooModel::Bagging(LeveragingBagging::load_snapshot(path)?))
            }
            ModelKind::VfdtMc | ModelKind::VfdtNba => {
                let payload = core_snapshot::read_sealed(path.as_ref())?;
                let mut r = Reader::new(&payload);
                let tree =
                    HoeffdingTreeClassifier::decode(&mut r, schema).map_err(SnapshotError::from)?;
                r.expect_end().map_err(SnapshotError::from)?;
                if tree.name() != kind.display_name() {
                    return Err(CheckpointError::Snapshot(SnapshotError::Invalid(format!(
                        "checkpoint holds a {} model, expected {}",
                        tree.name(),
                        kind.display_name()
                    ))));
                }
                Ok(match kind {
                    ModelKind::VfdtMc => ZooModel::VfdtMc(tree),
                    _ => ZooModel::VfdtNba(tree),
                })
            }
            ModelKind::HtAda | ModelKind::Efdt | ModelKind::FimtDd => {
                Err(CheckpointError::Unsupported(kind))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_kind_builds_and_reports_a_name() {
        let schema = StreamSchema::numeric("toy", 4, 3);
        for kind in ALL_MODELS {
            let model = build_model(kind, &schema, 1);
            assert!(!model.name().is_empty());
            assert_eq!(model.num_classes(), 3);
            let proba = model.predict_proba(&[0.1, 0.2, 0.3, 0.4]);
            assert_eq!(proba.len(), 3);
        }
    }

    #[test]
    fn standalone_models_exclude_ensembles() {
        assert_eq!(STANDALONE_MODELS.len(), 6);
        assert!(STANDALONE_MODELS.iter().all(|k| !k.is_ensemble()));
        assert_eq!(ALL_MODELS.len(), 8);
        assert_eq!(ALL_MODELS.iter().filter(|k| k.is_ensemble()).count(), 2);
    }

    #[test]
    fn display_names_match_the_paper_rows() {
        assert_eq!(ModelKind::Dmt.display_name(), "DMT (ours)");
        assert_eq!(ModelKind::VfdtNba.display_name(), "VFDT (NBA)");
        assert_eq!(ModelKind::ForestEnsemble.display_name(), "Forest Ens.");
    }

    fn training_batch(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 7) % n) as f64 / n as f64])
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        (xs, ys)
    }

    #[test]
    fn supported_kinds_checkpoint_and_restore_bit_identically() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let (xs, ys) = training_batch(400);
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        let dir = std::env::temp_dir().join("dmt-zoo-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        for kind in ALL_MODELS {
            if !ZooModel::supports_checkpoint(kind) {
                continue;
            }
            let mut model = build_zoo_model(kind, &schema, 11);
            for _ in 0..5 {
                model.as_classifier_mut().learn_batch(&rows, &ys);
            }
            let path = dir.join(format!("{kind:?}.dmt"));
            model.checkpoint(&path).expect("checkpoint");
            let mut restored = ZooModel::restore(kind, &schema, &path).expect("restore");
            assert_eq!(restored.kind(), kind);
            // Keep training both; predictions must stay bit-identical.
            model.as_classifier_mut().learn_batch(&rows, &ys);
            restored.as_classifier_mut().learn_batch(&rows, &ys);
            for x in xs.iter().take(50) {
                let pa = model.as_classifier().predict_proba(x);
                let pb = restored.as_classifier().predict_proba(x);
                for (va, vb) in pa.iter().zip(pb.iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "{kind:?} diverged");
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unsupported_kinds_report_a_typed_error() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let dir = std::env::temp_dir().join("dmt-zoo-unsupported-test");
        std::fs::create_dir_all(&dir).unwrap();
        for kind in [ModelKind::HtAda, ModelKind::Efdt, ModelKind::FimtDd] {
            assert!(!ZooModel::supports_checkpoint(kind));
            let model = build_zoo_model(kind, &schema, 1);
            let path = dir.join("never-written.dmt");
            match model.checkpoint(&path) {
                Err(CheckpointError::Unsupported(k)) => assert_eq!(k, kind),
                other => panic!("{kind:?} checkpoint gave {other:?}"),
            }
            assert!(!path.exists(), "unsupported checkpoint must not write");
            match ZooModel::restore(kind, &schema, &path) {
                Err(CheckpointError::Unsupported(k)) => assert_eq!(k, kind),
                _ => panic!("{kind:?} restore must be unsupported"),
            }
        }
    }

    #[test]
    fn restoring_as_the_wrong_vfdt_variant_fails() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let (xs, ys) = training_batch(100);
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = build_zoo_model(ModelKind::VfdtMc, &schema, 1);
        model.as_classifier_mut().learn_batch(&rows, &ys);
        let dir = std::env::temp_dir().join("dmt-zoo-wrong-kind-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mc.dmt");
        model.checkpoint(&path).expect("checkpoint");
        match ZooModel::restore(ModelKind::VfdtNba, &schema, &path) {
            Ok(_) => panic!("an MC checkpoint must not restore as NBA"),
            Err(CheckpointError::Snapshot(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_model_kind_accounts_its_memory() {
        let schema = StreamSchema::numeric("toy", 4, 3);
        let (xs, ys) = training_batch(200);
        let xs: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![x[0], x[1], 1.0 - x[0], 0.5])
            .collect();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        for kind in ALL_MODELS {
            let mut model = build_zoo_model(kind, &schema, 7);
            let fresh = model.memory_bytes();
            assert!(fresh > 0, "{kind:?} reports zero bytes when fresh");
            model.as_classifier_mut().learn_batch(&rows, &ys);
            let trained = model.memory_bytes();
            assert!(
                trained >= fresh,
                "{kind:?} shrank while learning: {fresh} -> {trained}"
            );
        }
    }

    #[test]
    fn every_model_can_learn_a_small_batch() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0, 0.5]).collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        for kind in ALL_MODELS {
            let mut model = build_model(kind, &schema, 3);
            model.learn_batch(&rows, &ys);
            let pred = model.predict(&[0.9, 0.5]);
            assert!(pred < 2, "{:?} produced an invalid class", kind);
            let complexity = model.complexity();
            assert!(complexity.parameters >= 0.0);
        }
    }
}
