//! The model zoo: build any classifier evaluated in the paper by name.
//!
//! The reproduction harness iterates over [`ALL_MODELS`] (or
//! [`STANDALONE_MODELS`] for the complexity tables, which exclude the
//! ensembles exactly like Tables III and IV do) and calls [`build_model`]
//! once per data set, so every run starts from a fresh, identically
//! configured classifier — mirroring §VI-C of the paper.

use dmt_baselines::{
    EfdtClassifier, EfdtConfig, FimtDdClassifier, FimtDdConfig, HatConfig, HoeffdingAdaptiveTree,
    HoeffdingTreeClassifier, VfdtConfig,
};
use dmt_core::{DmtConfig, DynamicModelTree};
use dmt_ensembles::{AdaptiveRandomForest, ArfConfig, LeveragingBagging, LeveragingBaggingConfig};
use dmt_models::OnlineClassifier;
use dmt_stream::StreamSchema;

/// The classifiers evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Dynamic Model Tree (the paper's contribution).
    Dmt,
    /// FIMT-DD re-implemented as a classifier.
    FimtDd,
    /// VFDT with majority-class leaves.
    VfdtMc,
    /// VFDT with adaptive Naive Bayes leaves.
    VfdtNba,
    /// Hoeffding Adaptive Tree.
    HtAda,
    /// Extremely Fast Decision Tree.
    Efdt,
    /// Adaptive Random Forest (3 weak learners).
    ForestEnsemble,
    /// Leveraging Bagging (3 weak learners).
    BaggingEnsemble,
}

impl ModelKind {
    /// The display name used in the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelKind::Dmt => "DMT (ours)",
            ModelKind::FimtDd => "FIMT-DD",
            ModelKind::VfdtMc => "VFDT (MC)",
            ModelKind::VfdtNba => "VFDT (NBA)",
            ModelKind::HtAda => "HT-ADA",
            ModelKind::Efdt => "EFDT",
            ModelKind::ForestEnsemble => "Forest Ens.",
            ModelKind::BaggingEnsemble => "Bagging Ens.",
        }
    }

    /// Whether this model is one of the ensemble reference rows (separated by
    /// a horizontal line in Table II).
    pub fn is_ensemble(&self) -> bool {
        matches!(self, ModelKind::ForestEnsemble | ModelKind::BaggingEnsemble)
    }
}

/// All models of Table II, in the paper's row order.
pub const ALL_MODELS: [ModelKind; 8] = [
    ModelKind::Dmt,
    ModelKind::FimtDd,
    ModelKind::VfdtMc,
    ModelKind::VfdtNba,
    ModelKind::HtAda,
    ModelKind::Efdt,
    ModelKind::ForestEnsemble,
    ModelKind::BaggingEnsemble,
];

/// The stand-alone models of Tables III–V (no ensembles).
pub const STANDALONE_MODELS: [ModelKind; 6] = [
    ModelKind::Dmt,
    ModelKind::FimtDd,
    ModelKind::VfdtMc,
    ModelKind::VfdtNba,
    ModelKind::HtAda,
    ModelKind::Efdt,
];

/// Build a freshly configured classifier of the given kind for a stream
/// schema, using the hyperparameters of §V-D / §VI-C of the paper.
pub fn build_model(kind: ModelKind, schema: &StreamSchema, seed: u64) -> Box<dyn OnlineClassifier> {
    match kind {
        ModelKind::Dmt => Box::new(DynamicModelTree::new(
            schema.clone(),
            DmtConfig {
                seed,
                ..DmtConfig::default()
            },
        )),
        ModelKind::FimtDd => Box::new(FimtDdClassifier::new(
            schema.clone(),
            FimtDdConfig::default(),
        )),
        ModelKind::VfdtMc => Box::new(HoeffdingTreeClassifier::new(
            schema.clone(),
            VfdtConfig::majority_class(),
        )),
        ModelKind::VfdtNba => Box::new(HoeffdingTreeClassifier::new(
            schema.clone(),
            VfdtConfig::naive_bayes_adaptive(),
        )),
        ModelKind::HtAda => Box::new(HoeffdingAdaptiveTree::new(
            schema.clone(),
            HatConfig::default(),
        )),
        ModelKind::Efdt => Box::new(EfdtClassifier::new(schema.clone(), EfdtConfig::default())),
        ModelKind::ForestEnsemble => Box::new(AdaptiveRandomForest::new(
            schema.clone(),
            ArfConfig {
                seed,
                ..ArfConfig::default()
            },
        )),
        ModelKind::BaggingEnsemble => Box::new(LeveragingBagging::new(
            schema.clone(),
            LeveragingBaggingConfig {
                seed,
                ..LeveragingBaggingConfig::default()
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_kind_builds_and_reports_a_name() {
        let schema = StreamSchema::numeric("toy", 4, 3);
        for kind in ALL_MODELS {
            let model = build_model(kind, &schema, 1);
            assert!(!model.name().is_empty());
            assert_eq!(model.num_classes(), 3);
            let proba = model.predict_proba(&[0.1, 0.2, 0.3, 0.4]);
            assert_eq!(proba.len(), 3);
        }
    }

    #[test]
    fn standalone_models_exclude_ensembles() {
        assert_eq!(STANDALONE_MODELS.len(), 6);
        assert!(STANDALONE_MODELS.iter().all(|k| !k.is_ensemble()));
        assert_eq!(ALL_MODELS.len(), 8);
        assert_eq!(ALL_MODELS.iter().filter(|k| k.is_ensemble()).count(), 2);
    }

    #[test]
    fn display_names_match_the_paper_rows() {
        assert_eq!(ModelKind::Dmt.display_name(), "DMT (ours)");
        assert_eq!(ModelKind::VfdtNba.display_name(), "VFDT (NBA)");
        assert_eq!(ModelKind::ForestEnsemble.display_name(), "Forest Ens.");
    }

    #[test]
    fn every_model_can_learn_a_small_batch() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0, 0.5]).collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        let rows: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
        for kind in ALL_MODELS {
            let mut model = build_model(kind, &schema, 3);
            model.learn_batch(&rows, &ys);
            let pred = model.predict(&[0.9, 0.5]);
            assert!(pred < 2, "{:?} produced an invalid class", kind);
            let complexity = model.complexity();
            assert!(complexity.parameters >= 0.0);
        }
    }
}
