//! Sharded multi-tenant model registry: the state behind the serving plane.
//!
//! A [`ModelRegistry`] holds many named models ("tenants") behind one shared
//! [`WorkerPool`], and separates each tenant's two traffic classes:
//!
//! * **Learn traffic** serialises on the tenant's writer lock — one
//!   `learn_batch` at a time per tenant, exactly like a single-threaded
//!   training loop.
//! * **Predict traffic** for Dynamic Model Tree tenants never touches the
//!   writer lock: after every learn batch the writer publishes an immutable
//!   **epoch snapshot** (a near-memcpy clone of the flat SoA arena) through
//!   an [`EpochCell`], and predictions pin whichever epoch is current — see
//!   [`dmt_core::epoch`]. A prediction is therefore always bit-identical to
//!   *some* published epoch, and its latency is independent of any
//!   concurrent `learn_batch`. Tenants of other kinds (the baselines) have
//!   no epoch machinery and predict under the writer lock — correct, but
//!   coupled; the DMT is the serving-grade model.
//!
//! Tenant lookup is sharded (hash of the name → shard, each shard its own
//! `RwLock`) so concurrent requests for different tenants do not contend on
//! one map lock, and a shard's lock is never held across model work.
//!
//! ## Fleet-wide memory arbitration
//!
//! A registry can carry a fleet-wide byte pool
//! ([`RegistryConfig::fleet_budget_bytes`]): every Dynamic Model Tree tenant
//! receives an equal share of the pool as its
//! [`DmtConfig::memory_budget_bytes`](dmt_core::DmtConfig::memory_budget_bytes),
//! re-arbitrated whenever tenants join or leave (or the pool is resized), so
//! a fleet of thousands of models degrades gracefully instead of any one
//! tree growing unbounded. Non-DMT tenants have no budget ladder and are
//! excluded from arbitration.
//!
//! ## Crash safety and hot swap
//!
//! [`ModelRegistry::checkpoint`] writes a tenant's sealed snapshot
//! atomically; [`ModelRegistry::swap_from_snapshot`] hot-swaps a tenant's
//! model from a snapshot file (same kind, same schema) and republishes the
//! serving epoch, so a fleet can roll back or promote a model without
//! dropping predict traffic. Kinds without a snapshot codec (HT-Ada, EFDT,
//! FIMT-DD) surface [`CheckpointError::Unsupported`] as the typed
//! [`RegistryError::Checkpoint`] — never a panic, never a silent drop.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use dmt_core::epoch::EpochCell;
use dmt_core::lockrank::{LockRank, RankToken, Ranked};
use dmt_core::{DmtError, DynamicModelTree, Parallelism, WorkerPool};
use dmt_models::Rows;
use dmt_stream::StreamSchema;

use crate::zoo::{CheckpointError, ModelKind, ZooModel};

/// Configuration of a [`ModelRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Number of tenant-map shards (rounded up to at least 1). Lookups hash
    /// the tenant name to a shard; more shards mean less map-lock contention
    /// between unrelated tenants.
    pub shards: usize,
    /// Fleet-wide resident-memory pool in bytes, arbitrated equally across
    /// the Dynamic Model Tree tenants (`None` = unbudgeted fleet).
    pub fleet_budget_bytes: Option<usize>,
    /// Parallelism of the one [`WorkerPool`] shared by every tenant that can
    /// use it (DMT trees and ensembles). `Serial` (and `Threads(0|1)`)
    /// creates no pool and no threads.
    pub parallelism: Parallelism,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            fleet_budget_bytes: None,
            parallelism: Parallelism::from_env(),
        }
    }
}

/// Why a registry operation failed. Every failure mode of the serving plane
/// maps onto one of these variants — the wire protocol transports them as
/// typed error responses.
#[derive(Debug)]
pub enum RegistryError {
    /// No tenant with this name is registered.
    UnknownTenant(String),
    /// [`ModelRegistry::register`] was called with a name already in use.
    DuplicateTenant(String),
    /// The batch was rejected by the model's input validation (mismatched
    /// lengths, wrong feature dimension, non-finite values, out-of-range
    /// labels). The tenant is untouched.
    Model(DmtError),
    /// Checkpoint or swap failed — including the typed
    /// [`CheckpointError::Unsupported`] for kinds without a snapshot codec.
    Checkpoint(CheckpointError),
    /// A swapped-in snapshot disagrees with the tenant's registered stream
    /// schema (feature count or class count).
    SchemaMismatch {
        /// What the tenant was registered with.
        expected: String,
        /// What the snapshot carries.
        found: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            RegistryError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
            RegistryError::Model(e) => write!(f, "rejected batch: {e}"),
            RegistryError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            RegistryError::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "schema mismatch: tenant has {expected}, snapshot has {found}"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Model(e) => Some(e),
            RegistryError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DmtError> for RegistryError {
    fn from(e: DmtError) -> Self {
        RegistryError::Model(e)
    }
}

impl From<CheckpointError> for RegistryError {
    fn from(e: CheckpointError) -> Self {
        RegistryError::Checkpoint(e)
    }
}

/// The result of a predict request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictOutcome {
    /// The epoch the predictions were computed from (`None` for tenants
    /// without epoch serving — the baselines, which predict under the
    /// writer lock).
    pub epoch: Option<u64>,
    /// One predicted class per input row.
    pub predictions: Vec<usize>,
}

/// The result of a learn request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnOutcome {
    /// The epoch published from the post-batch model state (`None` for
    /// tenants without epoch serving).
    pub epoch: Option<u64>,
    /// Total rows the tenant has consumed since registration.
    pub observations: u64,
}

/// A point-in-time view of one tenant, as served by the `stats` op.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Model kind display name (the paper's row name).
    pub kind: String,
    /// Current serving epoch (0 for tenants without epoch serving).
    pub epoch: u64,
    /// Epoch snapshots currently resident: the served one plus any
    /// superseded epochs still pinned by in-flight predictions.
    pub live_epochs: u64,
    /// Resident heap bytes of the writer model.
    pub memory_bytes: u64,
    /// Total rows consumed since registration.
    pub observations: u64,
    /// The tenant's arbitrated share of the fleet byte pool, if any.
    pub budget_bytes: Option<u64>,
}

struct Tenant {
    name: String,
    kind: ModelKind,
    schema: StreamSchema,
    /// The learning model. Learn/checkpoint/swap serialise here; DMT predict
    /// traffic never takes this lock.
    writer: Mutex<ZooModel>,
    /// Epoch publication point — `Some` only for DMT tenants.
    epochs: Option<EpochCell<DynamicModelTree>>,
    observations: AtomicU64,
}

impl Tenant {
    fn lock_writer(&self) -> Ranked<MutexGuard<'_, ZooModel>> {
        // The rank token must exist before blocking on the lock so an
        // out-of-order acquisition asserts instead of deadlocking.
        let token = RankToken::acquire(LockRank::TenantWriter);
        // Model code behind this lock is panic-audited (typed errors on
        // hostile input), but a poisoned lock must not wedge the tenant
        // forever: the model state is still consistent (learn validates
        // before mutating), so recover the guard.
        let guard = match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ranked::new(token, guard)
    }
}

/// A sharded, thread-safe registry of named models (see the
/// [module docs](self)).
pub struct ModelRegistry {
    shards: Vec<RwLock<HashMap<String, Arc<Tenant>>>>,
    /// The one worker pool shared by every pool-capable tenant (`None` when
    /// the registry runs serial).
    pool: Option<Arc<WorkerPool>>,
    parallelism: Parallelism,
    fleet_budget: Mutex<Option<usize>>,
}

impl ModelRegistry {
    /// Create an empty registry. A shared [`WorkerPool`] is spun up only if
    /// `config.parallelism` asks for 2+ executors.
    pub fn new(config: RegistryConfig) -> Self {
        let pool = match config.parallelism.workers() {
            n if n >= 2 => Some(Arc::new(WorkerPool::new(n))),
            _ => None,
        };
        Self {
            shards: (0..config.shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            pool,
            parallelism: config.parallelism,
            fleet_budget: Mutex::new(config.fleet_budget_bytes),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Tenant>>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    fn read_shard(
        shard: &RwLock<HashMap<String, Arc<Tenant>>>,
    ) -> Ranked<std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Tenant>>>> {
        let token = RankToken::acquire(LockRank::RegistryMap);
        let guard = match shard.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ranked::new(token, guard)
    }

    fn write_shard(
        shard: &RwLock<HashMap<String, Arc<Tenant>>>,
    ) -> Ranked<std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Tenant>>>> {
        let token = RankToken::acquire(LockRank::RegistryMap);
        let guard = match shard.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ranked::new(token, guard)
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, RegistryError> {
        Self::read_shard(self.shard(name))
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownTenant(name.to_string()))
    }

    /// Register `model` under `name`, sharing the registry's worker pool
    /// with it and re-arbitrating the fleet budget. DMT tenants immediately
    /// publish epoch 0 (the freshly registered state) and serve predictions
    /// from it.
    pub fn register(
        &self,
        name: &str,
        schema: StreamSchema,
        mut model: ZooModel,
    ) -> Result<(), RegistryError> {
        if let Some(pool) = &self.pool {
            model.set_worker_pool(Arc::clone(pool));
        }
        let epochs = match &model {
            ZooModel::Dmt(tree) => Some(EpochCell::new(tree.clone())),
            _ => None,
        };
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            kind: model.kind(),
            schema,
            writer: Mutex::new(model),
            epochs,
            observations: AtomicU64::new(0),
        });
        {
            let mut shard = Self::write_shard(self.shard(name));
            if shard.contains_key(name) {
                return Err(RegistryError::DuplicateTenant(name.to_string()));
            }
            shard.insert(name.to_string(), tenant);
        }
        self.rebalance();
        Ok(())
    }

    /// Remove a tenant. Returns `false` if no tenant had that name. In-flight
    /// predictions that pinned one of its epochs finish undisturbed; the
    /// epochs are reclaimed when the last pin drops.
    pub fn remove(&self, name: &str) -> bool {
        let removed = Self::write_shard(self.shard(name)).remove(name).is_some();
        if removed {
            self.rebalance();
        }
        removed
    }

    /// Names of all registered tenants, sorted (stable across shard layout).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| Self::read_shard(shard).keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| Self::read_shard(shard).len())
            .sum()
    }

    /// Whether the registry has no tenants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared worker pool, if the registry runs threaded.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Validate a batch against `schema` the way the DMT's checked entry
    /// points do, so non-DMT tenants reject hostile input with the same
    /// typed errors instead of panicking inside model code.
    fn validate_batch(
        schema: &StreamSchema,
        xs: Rows<'_>,
        ys: Option<&[usize]>,
    ) -> Result<(), RegistryError> {
        if let Some(ys) = ys {
            if xs.len() != ys.len() {
                return Err(DmtError::LengthMismatch {
                    xs: xs.len(),
                    ys: ys.len(),
                }
                .into());
            }
            if xs.is_empty() {
                return Err(DmtError::EmptyBatch.into());
            }
        }
        let expected = schema.num_features();
        for (row, x) in xs.iter().enumerate() {
            if x.len() != expected {
                return Err(DmtError::FeatureDimension {
                    row,
                    got: x.len(),
                    expected,
                }
                .into());
            }
            for (feature, v) in x.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DmtError::NonFiniteFeature { row, feature }.into());
                }
            }
        }
        if let Some(ys) = ys {
            for (row, &label) in ys.iter().enumerate() {
                if label >= schema.num_classes {
                    return Err(DmtError::LabelOutOfRange {
                        row,
                        label,
                        num_classes: schema.num_classes,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }

    /// Predict a batch for a tenant.
    ///
    /// DMT tenants answer from the pinned current epoch without touching the
    /// writer lock; every returned prediction vector is bit-identical to
    /// what that epoch's snapshot predicts in isolation. Other kinds predict
    /// under the writer lock.
    pub fn predict(&self, name: &str, xs: Rows<'_>) -> Result<PredictOutcome, RegistryError> {
        let tenant = self.tenant(name)?;
        let mut predictions = vec![0usize; xs.len()];
        if let Some(cell) = &tenant.epochs {
            let epoch = cell.pin();
            epoch.try_predict_batch_into(xs, &mut predictions)?;
            return Ok(PredictOutcome {
                epoch: Some(epoch.seq()),
                predictions,
            });
        }
        Self::validate_batch(&tenant.schema, xs, None)?;
        let guard = tenant.lock_writer();
        guard
            .as_classifier()
            .predict_batch_into(xs, &mut predictions);
        Ok(PredictOutcome {
            epoch: None,
            predictions,
        })
    }

    /// Learn a batch for a tenant and, for DMT tenants, publish the
    /// post-batch state as the next serving epoch.
    ///
    /// Hostile batches are rejected with a typed error before any state is
    /// touched — the tenant keeps serving its current epoch.
    pub fn learn(
        &self,
        name: &str,
        xs: Rows<'_>,
        ys: &[usize],
    ) -> Result<LearnOutcome, RegistryError> {
        let tenant = self.tenant(name)?;
        let mut guard = tenant.lock_writer();
        let epoch = match (&mut *guard, &tenant.epochs) {
            (ZooModel::Dmt(tree), Some(cell)) => {
                tree.try_learn_batch(xs, ys)?;
                Some(cell.publish(tree.clone()))
            }
            (model, _) => {
                Self::validate_batch(&tenant.schema, xs, Some(ys))?;
                model.as_classifier_mut().learn_batch(xs, ys);
                None
            }
        };
        drop(guard);
        let observations = tenant
            .observations
            .fetch_add(xs.len() as u64, Ordering::Relaxed)
            + xs.len() as u64;
        Ok(LearnOutcome {
            epoch,
            observations,
        })
    }

    /// Write a crash-safe checkpoint of a tenant's current model.
    ///
    /// Kinds without a snapshot codec (HT-Ada, EFDT, FIMT-DD) return the
    /// typed [`RegistryError::Checkpoint`]`(`[`CheckpointError::Unsupported`]`)`
    /// without touching the filesystem.
    pub fn checkpoint<P: AsRef<Path>>(&self, name: &str, path: P) -> Result<(), RegistryError> {
        let tenant = self.tenant(name)?;
        let guard = tenant.lock_writer();
        guard.checkpoint(path)?;
        Ok(())
    }

    /// Hot-swap a tenant's model from a snapshot file written by
    /// [`ModelRegistry::checkpoint`] (or any [`ZooModel::checkpoint`]).
    ///
    /// The snapshot must be of the tenant's registered kind and schema;
    /// mismatches and unsupported kinds are typed errors and leave the
    /// tenant serving its current model. On success the restored model
    /// inherits the shared worker pool and its fleet-budget share, and DMT
    /// tenants publish it as the next epoch — in-flight predictions pinned
    /// on older epochs finish undisturbed. Returns the new epoch, if any.
    pub fn swap_from_snapshot<P: AsRef<Path>>(
        &self,
        name: &str,
        path: P,
    ) -> Result<Option<u64>, RegistryError> {
        let tenant = self.tenant(name)?;
        let mut restored = ZooModel::restore(tenant.kind, &tenant.schema, path)?;
        if let ZooModel::Dmt(tree) = &restored {
            if *tree.schema() != tenant.schema {
                return Err(RegistryError::SchemaMismatch {
                    expected: format!(
                        "{} features / {} classes",
                        tenant.schema.num_features(),
                        tenant.schema.num_classes
                    ),
                    found: format!(
                        "{} features / {} classes",
                        tree.schema().num_features(),
                        tree.schema().num_classes
                    ),
                });
            }
        }
        if let Some(pool) = &self.pool {
            restored.set_worker_pool(Arc::clone(pool));
        }
        let epoch = {
            let mut guard = tenant.lock_writer();
            *guard = restored;
            match (&*guard, &tenant.epochs) {
                (ZooModel::Dmt(tree), Some(cell)) => Some(cell.publish(tree.clone())),
                _ => None,
            }
        };
        self.rebalance();
        Ok(epoch)
    }

    /// Stats snapshot for one tenant.
    pub fn stats(&self, name: &str) -> Result<TenantStats, RegistryError> {
        let tenant = self.tenant(name)?;
        let guard = tenant.lock_writer();
        let memory_bytes = guard.memory_bytes() as u64;
        let budget_bytes = match &*guard {
            ZooModel::Dmt(tree) => tree.config().memory_budget_bytes.map(|b| b as u64),
            _ => None,
        };
        drop(guard);
        let (epoch, live_epochs) = match &tenant.epochs {
            Some(cell) => (cell.current_seq(), cell.live_epochs() as u64),
            None => (0, 0),
        };
        Ok(TenantStats {
            name: tenant.name.clone(),
            kind: tenant.kind.display_name().to_string(),
            epoch,
            live_epochs,
            memory_bytes,
            observations: tenant.observations.load(Ordering::Relaxed),
            budget_bytes,
        })
    }

    /// Resize (or disarm, with `None`) the fleet-wide byte pool and
    /// re-arbitrate every DMT tenant's share.
    pub fn set_fleet_budget(&self, bytes: Option<usize>) {
        {
            let mut guard = match self.fleet_budget.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *guard = bytes;
        }
        self.rebalance();
    }

    /// The configured fleet-wide byte pool.
    pub fn fleet_budget(&self) -> Option<usize> {
        match self.fleet_budget.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Re-arbitrate the fleet byte pool across the DMT tenants: each
    /// receives an equal share `fleet / n`, applied through
    /// [`DynamicModelTree::set_memory_budget`] (the budget ladder enforces
    /// it at the tenant's next learn batch). With no fleet budget every
    /// tenant is disarmed. Runs automatically on register, remove, swap and
    /// [`ModelRegistry::set_fleet_budget`].
    pub fn rebalance(&self) {
        let fleet = self.fleet_budget();
        let tenants: Vec<Arc<Tenant>> = self
            .shards
            .iter()
            .flat_map(|shard| {
                Self::read_shard(shard)
                    .values()
                    .filter(|t| t.kind == ModelKind::Dmt)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        if tenants.is_empty() {
            return;
        }
        let share = fleet.map(|bytes| bytes / tenants.len());
        for tenant in tenants {
            let mut guard = tenant.lock_writer();
            if let ZooModel::Dmt(tree) = &mut *guard {
                tree.set_memory_budget(share);
            }
        }
    }

    /// The parallelism the registry was built with (what the shared pool
    /// runs, or `Serial`).
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::build_zoo_model;
    use dmt_core::DmtConfig;
    use dmt_models::OnlineClassifier;

    fn toy_schema() -> StreamSchema {
        StreamSchema::numeric("toy", 2, 2)
    }

    fn toy_batch(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 13) % n) as f64 / n as f64])
            .collect();
        let ys: Vec<usize> = xs.iter().map(|x| usize::from(x[0] > 0.5)).collect();
        (xs, ys)
    }

    fn rows(xs: &[Vec<f64>]) -> Vec<&[f64]> {
        xs.iter().map(|v| v.as_slice()).collect()
    }

    fn serial_registry() -> ModelRegistry {
        ModelRegistry::new(RegistryConfig {
            parallelism: Parallelism::Serial,
            ..RegistryConfig::default()
        })
    }

    fn register_dmt(registry: &ModelRegistry, name: &str) {
        let schema = toy_schema();
        let tree = DynamicModelTree::new(
            schema.clone(),
            DmtConfig {
                parallelism: Parallelism::Serial,
                ..DmtConfig::default()
            },
        );
        registry
            .register(name, schema, ZooModel::Dmt(tree))
            .expect("register");
    }

    #[test]
    fn register_predict_learn_advances_epochs() {
        let registry = serial_registry();
        register_dmt(&registry, "m");
        let (xs, ys) = toy_batch(64);
        let xs = rows(&xs);

        let before = registry.predict("m", &xs).expect("predict");
        assert_eq!(before.epoch, Some(0));
        assert_eq!(before.predictions.len(), 64);

        for round in 1..=5u64 {
            let outcome = registry.learn("m", &xs, &ys).expect("learn");
            assert_eq!(outcome.epoch, Some(round));
            assert_eq!(outcome.observations, round * 64);
        }
        let after = registry.predict("m", &xs).expect("predict");
        assert_eq!(after.epoch, Some(5));

        let stats = registry.stats("m").expect("stats");
        assert_eq!(stats.epoch, 5);
        assert_eq!(stats.observations, 320);
        assert_eq!(stats.live_epochs, 1);
        assert!(stats.memory_bytes > 0);
    }

    #[test]
    fn epoch_predictions_match_an_isolated_twin() {
        let registry = serial_registry();
        register_dmt(&registry, "m");
        let schema = toy_schema();
        let mut twin = DynamicModelTree::new(
            schema,
            DmtConfig {
                parallelism: Parallelism::Serial,
                ..DmtConfig::default()
            },
        );
        let (xs, ys) = toy_batch(48);
        let xs = rows(&xs);
        for _ in 0..8 {
            registry.learn("m", &xs, &ys).expect("learn");
            twin.learn_batch(&xs, &ys);
        }
        let served = registry.predict("m", &xs).expect("predict");
        let mut expected = vec![0usize; xs.len()];
        twin.predict_batch_into(&xs, &mut expected);
        assert_eq!(served.predictions, expected);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed_errors() {
        let registry = serial_registry();
        let (xs, _) = toy_batch(4);
        match registry.predict("ghost", &rows(&xs)) {
            Err(RegistryError::UnknownTenant(name)) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        register_dmt(&registry, "m");
        let schema = toy_schema();
        let model = build_zoo_model(ModelKind::Dmt, &schema, 1);
        match registry.register("m", schema, model) {
            Err(RegistryError::DuplicateTenant(name)) => assert_eq!(name, "m"),
            other => panic!("expected DuplicateTenant, got {other:?}"),
        }
    }

    #[test]
    fn hostile_batches_are_rejected_typed_for_every_tenant_kind() {
        let registry = serial_registry();
        register_dmt(&registry, "dmt");
        let schema = toy_schema();
        registry
            .register(
                "hat",
                schema.clone(),
                build_zoo_model(ModelKind::HtAda, &schema, 1),
            )
            .expect("register hat");
        for name in ["dmt", "hat"] {
            let bad_dim: Vec<&[f64]> = vec![&[0.5]];
            match registry.predict(name, &bad_dim) {
                Err(RegistryError::Model(DmtError::FeatureDimension { .. })) => {}
                other => panic!("{name}: expected FeatureDimension, got {other:?}"),
            }
            let nan: Vec<&[f64]> = vec![&[0.5, f64::NAN]];
            match registry.learn(name, &nan, &[0]) {
                Err(RegistryError::Model(DmtError::NonFiniteFeature { .. })) => {}
                other => panic!("{name}: expected NonFiniteFeature, got {other:?}"),
            }
            let (xs, _) = toy_batch(3);
            match registry.learn(name, &rows(&xs), &[0, 9, 1]) {
                Err(RegistryError::Model(DmtError::LabelOutOfRange { .. })) => {}
                other => panic!("{name}: expected LabelOutOfRange, got {other:?}"),
            }
            // The tenant still serves after every rejection.
            let (xs, ys) = toy_batch(8);
            registry.learn(name, &rows(&xs), &ys).expect("learn");
            registry.predict(name, &rows(&xs)).expect("predict");
        }
    }

    #[test]
    fn fleet_budget_is_arbitrated_equally_across_dmt_tenants() {
        let registry = ModelRegistry::new(RegistryConfig {
            fleet_budget_bytes: Some(1 << 20),
            parallelism: Parallelism::Serial,
            ..RegistryConfig::default()
        });
        register_dmt(&registry, "a");
        let schema = toy_schema();
        registry
            .register(
                "hat",
                schema.clone(),
                build_zoo_model(ModelKind::HtAda, &schema, 1),
            )
            .expect("register hat");
        assert_eq!(
            registry.stats("a").expect("stats").budget_bytes,
            Some(1 << 20),
            "a lone DMT tenant owns the whole pool (non-DMT tenants excluded)"
        );
        register_dmt(&registry, "b");
        for name in ["a", "b"] {
            assert_eq!(
                registry.stats(name).expect("stats").budget_bytes,
                Some((1 << 20) / 2)
            );
        }
        assert!(registry.remove("b"));
        assert_eq!(
            registry.stats("a").expect("stats").budget_bytes,
            Some(1 << 20)
        );
        registry.set_fleet_budget(None);
        assert_eq!(registry.stats("a").expect("stats").budget_bytes, None);
        // Non-DMT tenants never get a budget.
        assert_eq!(registry.stats("hat").expect("stats").budget_bytes, None);
    }

    #[test]
    fn checkpoint_unsupported_is_a_typed_registry_error() {
        let registry = serial_registry();
        let schema = toy_schema();
        for kind in [ModelKind::HtAda, ModelKind::Efdt, ModelKind::FimtDd] {
            let name = format!("{kind:?}");
            registry
                .register(&name, schema.clone(), build_zoo_model(kind, &schema, 1))
                .expect("register");
            let path = std::env::temp_dir().join("dmt-registry-unsupported.dmt");
            match registry.checkpoint(&name, &path) {
                Err(RegistryError::Checkpoint(CheckpointError::Unsupported(k))) => {
                    assert_eq!(k, kind)
                }
                other => panic!("{kind:?}: expected Unsupported, got {other:?}"),
            }
            match registry.swap_from_snapshot(&name, &path) {
                Err(RegistryError::Checkpoint(CheckpointError::Unsupported(k))) => {
                    assert_eq!(k, kind)
                }
                other => panic!("{kind:?}: expected Unsupported, got {other:?}"),
            }
            // The tenant keeps serving after both rejections.
            let (xs, ys) = toy_batch(8);
            registry.learn(&name, &rows(&xs), &ys).expect("learn");
            registry.predict(&name, &rows(&xs)).expect("predict");
        }
    }

    #[test]
    fn hot_swap_from_snapshot_republishes_the_serving_epoch() {
        let registry = serial_registry();
        register_dmt(&registry, "m");
        let (xs, ys) = toy_batch(64);
        let xs = rows(&xs);
        for _ in 0..6 {
            registry.learn("m", &xs, &ys).expect("learn");
        }
        let dir = std::env::temp_dir().join("dmt-registry-swap-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("m.dmt");
        registry.checkpoint("m", &path).expect("checkpoint");
        let trained = registry.predict("m", &xs).expect("predict");

        // Keep learning past the checkpoint, then roll back via hot swap.
        for _ in 0..4 {
            registry.learn("m", &xs, &ys).expect("learn");
        }
        let epoch = registry.swap_from_snapshot("m", &path).expect("swap");
        assert_eq!(epoch, Some(11), "6 learns + 4 learns + 1 swap publish");
        let rolled_back = registry.predict("m", &xs).expect("predict");
        assert_eq!(rolled_back.epoch, Some(11));
        assert_eq!(
            rolled_back.predictions, trained.predictions,
            "swap must serve exactly the checkpointed state"
        );
        // The swapped-in model keeps learning.
        registry.learn("m", &xs, &ys).expect("learn");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swapping_a_mismatched_schema_is_rejected() {
        let registry = serial_registry();
        register_dmt(&registry, "m");
        // Checkpoint a tree with a *different* schema under another tenant.
        let other_schema = StreamSchema::numeric("other", 5, 3);
        let tree = DynamicModelTree::new(
            other_schema.clone(),
            DmtConfig {
                parallelism: Parallelism::Serial,
                ..DmtConfig::default()
            },
        );
        let dir = std::env::temp_dir().join("dmt-registry-schema-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("other.dmt");
        tree.save_snapshot(&path).expect("save");
        match registry.swap_from_snapshot("m", &path) {
            Err(RegistryError::SchemaMismatch { .. }) => {}
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        // Tenant unharmed.
        let (xs, ys) = toy_batch(8);
        registry.learn("m", &rows(&xs), &ys).expect("learn");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn names_and_len_cover_all_shards() {
        let registry = serial_registry();
        assert!(registry.is_empty());
        for i in 0..20 {
            register_dmt(&registry, &format!("tenant-{i:02}"));
        }
        assert_eq!(registry.len(), 20);
        let names = registry.names();
        assert_eq!(names.len(), 20);
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted");
        assert!(registry.remove("tenant-07"));
        assert!(!registry.remove("tenant-07"));
        assert_eq!(registry.len(), 19);
    }
}
