//! # dmt — Dynamic Model Tree for interpretable data stream learning
//!
//! This is the facade crate of the workspace: it re-exports the public API of
//! every sub-crate and provides the [`zoo`] module, a small factory that
//! builds any of the paper's classifiers by name (used by the reproduction
//! harness, the examples and downstream users who want to compare models).
//!
//! ## Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`core`] | the Dynamic Model Tree ([`core::DynamicModelTree`], [`core::DmtConfig`]) |
//! | [`models`] | GLMs, Naive Bayes, AIC, the [`models::OnlineClassifier`] trait |
//! | [`stream`] | stream abstractions, generators, the Table I catalog, the named workload suite |
//! | [`drift`] | ADWIN, Page-Hinkley, DDM drift detectors |
//! | [`baselines`] | VFDT (MC/NBA), HT-Ada, EFDT, FIMT-DD |
//! | [`ensembles`] | Adaptive Random Forest, Leveraging Bagging |
//! | [`eval`] | prequential evaluation, metrics, traces |
//!
//! ## Quickstart
//!
//! ```
//! use dmt::prelude::*;
//!
//! // Build the paper's SEA stream (scaled down) and a Dynamic Model Tree.
//! let mut stream = dmt::stream::catalog::build_stream("SEA", 0.01, 42).unwrap();
//! let schema = stream.schema().clone();
//! let mut tree = DynamicModelTree::new(schema, DmtConfig::default());
//!
//! // Prequential (test-then-train) evaluation.
//! let runner = PrequentialRun::new(PrequentialConfig::default());
//! let result = runner.evaluate(&mut tree, &mut stream, None);
//! let (f1, _std) = result.f1_mean_std();
//! assert!(f1 > 0.5);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use dmt_baselines as baselines;
pub use dmt_core as core;
pub use dmt_drift as drift;
pub use dmt_ensembles as ensembles;
pub use dmt_eval as eval;
pub use dmt_models as models;
pub use dmt_stream as stream;

pub mod registry;
pub mod zoo;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::core::{DmtConfig, DynamicModelTree, Parallelism};
    pub use crate::eval::{PrequentialConfig, PrequentialResult, PrequentialRun};
    pub use crate::models::{BatchMode, Complexity, OnlineClassifier, SimpleModel};
    pub use crate::registry::{ModelRegistry, RegistryConfig, RegistryError};
    pub use crate::stream::{
        build_workload, build_workload_default, Batch, DataStream, Instance, StreamSchema,
        WorkloadInfo, WORKLOADS,
    };
    pub use crate::zoo::{build_model, ModelKind, ALL_MODELS, STANDALONE_MODELS};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_types() {
        let schema = StreamSchema::numeric("toy", 2, 2);
        let tree = DynamicModelTree::new(schema, DmtConfig::default());
        assert_eq!(tree.name(), "DMT");
    }

    #[test]
    fn facade_reexports_are_wired_together() {
        let mut stream = crate::stream::generators::SeaGenerator::new(0, 0.0, 1);
        let batch = crate::stream::DataStream::next_batch(&mut stream, 16).unwrap();
        assert_eq!(batch.len(), 16);
        let detector = crate::drift::Adwin::default();
        assert_eq!(detector.width(), 0);
        // The workload suite is part of the prelude surface.
        assert_eq!(WORKLOADS.len(), 5);
        assert!(WORKLOADS.iter().any(|w| w.name == "drift-cocktail"));
        assert!(WORKLOADS.iter().any(|w| w.name == "memory-budget"));
    }
}
