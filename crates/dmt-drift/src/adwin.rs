//! ADWIN — ADaptive WINdowing (Bifet & Gavaldà, 2007).
//!
//! ADWIN keeps a variable-length window of recent observations and repeatedly
//! checks whether the window can be split into two sub-windows whose means
//! differ by more than a threshold derived from the Hoeffding bound. If so,
//! the older sub-window is dropped and drift is reported.
//!
//! This implementation uses the exponential-histogram bucket structure of the
//! original paper, so memory is `O(M log(W/M))` for window length `W`.

use dmt_models::memory::vec_bytes;
use dmt_models::wire::{self, Reader, WireError, Writer};
use dmt_models::MemoryUsage;

use crate::DriftDetector;

/// Maximum number of buckets per row of the exponential histogram.
const MAX_BUCKETS_PER_ROW: usize = 5;

/// One row of the exponential histogram: buckets of identical capacity.
#[derive(Debug, Clone, Default)]
struct BucketRow {
    /// Sums of the values in each bucket.
    totals: Vec<f64>,
    /// Sums of squared values (for variance maintenance).
    variances: Vec<f64>,
}

/// The ADWIN drift detector.
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    rows: Vec<BucketRow>,
    /// Total number of observations currently in the window.
    width: u64,
    /// Sum of all observations in the window.
    total: f64,
    /// Variance accumulator of the window.
    variance: f64,
    /// Observations seen since the last detected drift.
    since_last_drift: u64,
    /// Check for cuts only every `clock` observations (standard optimisation).
    clock: u64,
    drift: bool,
}

impl MemoryUsage for Adwin {
    /// Heap bytes of the exponential-histogram bucket rows — the only
    /// growing state of the detector (`O(M log(W/M))` of the window).
    fn memory_bytes(&self) -> usize {
        vec_bytes(&self.rows)
            + self
                .rows
                .iter()
                .map(|row| vec_bytes(&row.totals) + vec_bytes(&row.variances))
                .sum::<usize>()
    }
}

impl Adwin {
    /// Create an ADWIN detector with confidence parameter `delta`
    /// (smaller = more conservative). The canonical default is `0.002`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Self {
            delta,
            rows: vec![BucketRow::default()],
            width: 0,
            total: 0.0,
            variance: 0.0,
            since_last_drift: 0,
            clock: 32,
            drift: false,
        }
    }

    /// Current window length.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Mean of the current window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.total / self.width as f64
        }
    }

    /// Estimated variance of the current window.
    pub fn variance(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.variance / self.width as f64
        }
    }

    /// Serialise the full detector state (window accumulators and the
    /// exponential-histogram buckets) through `w`; the inverse of
    /// [`Adwin::decode`].
    pub fn encode(&self, w: &mut Writer) {
        w.put_f64(self.delta);
        w.put_u64(self.width);
        w.put_f64(self.total);
        w.put_f64(self.variance);
        w.put_u64(self.since_last_drift);
        w.put_u64(self.clock);
        w.put_bool(self.drift);
        w.put_usize(self.rows.len());
        for row in &self.rows {
            w.put_f64_slice(&row.totals);
            w.put_f64_slice(&row.variances);
        }
    }

    /// Reconstruct a detector from [`Adwin::encode`] output, validating the
    /// confidence parameter and the histogram shape (paired totals/variances,
    /// at least one row, row widths within the compression bound).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let delta = r.get_f64()?;
        let width = r.get_u64()?;
        let total = r.get_f64()?;
        let variance = r.get_f64()?;
        let since_last_drift = r.get_u64()?;
        let clock = r.get_u64()?;
        let drift = r.get_bool()?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err(wire::invalid(format!(
                "ADWIN delta must be in (0, 1), got {delta}"
            )));
        }
        if clock == 0 {
            return Err(wire::invalid("ADWIN clock must be positive"));
        }
        let row_count = r.get_usize()?;
        if row_count == 0 || row_count > 64 {
            return Err(wire::invalid(format!(
                "ADWIN histogram has {row_count} rows, expected 1..=64"
            )));
        }
        let mut rows = Vec::new();
        for _ in 0..row_count {
            let totals = r.get_f64_vec()?;
            let variances = r.get_f64_vec()?;
            if totals.len() != variances.len() {
                return Err(wire::invalid(format!(
                    "ADWIN row has {} totals but {} variances",
                    totals.len(),
                    variances.len()
                )));
            }
            // `compress` keeps every row at `MAX_BUCKETS_PER_ROW` plus at
            // most the one bucket being inserted.
            if totals.len() > MAX_BUCKETS_PER_ROW + 1 {
                return Err(wire::invalid(format!(
                    "ADWIN row has {} buckets, compression bound is {}",
                    totals.len(),
                    MAX_BUCKETS_PER_ROW + 1
                )));
            }
            rows.push(BucketRow { totals, variances });
        }
        Ok(Self {
            delta,
            rows,
            width,
            total,
            variance,
            since_last_drift,
            clock,
            drift,
        })
    }

    fn insert(&mut self, value: f64) {
        // Insert a new bucket of capacity 1 at row 0.
        if self.width > 0 {
            let mean = self.mean();
            self.variance +=
                (self.width as f64 / (self.width + 1) as f64) * (value - mean) * (value - mean);
        }
        self.width += 1;
        self.total += value;
        self.rows[0].totals.insert(0, value);
        self.rows[0].variances.insert(0, 0.0);
        self.compress();
    }

    fn compress(&mut self) {
        let mut row = 0;
        loop {
            if self.rows[row].totals.len() <= MAX_BUCKETS_PER_ROW {
                break;
            }
            // Merge the two oldest buckets of this row into one bucket of the
            // next row.
            if row + 1 == self.rows.len() {
                self.rows.push(BucketRow::default());
            }
            let n = self.rows[row].totals.len();
            let t1 = self.rows[row].totals.remove(n - 1);
            let v1 = self.rows[row].variances.remove(n - 1);
            let t2 = self.rows[row].totals.remove(n - 2);
            let v2 = self.rows[row].variances.remove(n - 2);
            let capacity = (1u64 << row) as f64;
            // Variance of the merged bucket (parallel combination).
            let mean1 = t1 / capacity;
            let mean2 = t2 / capacity;
            let merged_var = v1
                + v2
                + capacity * capacity / (2.0 * capacity) * (mean1 - mean2) * (mean1 - mean2);
            self.rows[row + 1].totals.insert(0, t1 + t2);
            self.rows[row + 1].variances.insert(0, merged_var);
            row += 1;
        }
    }

    /// Drop the oldest bucket (used when a cut is found).
    fn drop_oldest(&mut self) {
        let last_row = self.rows.len() - 1;
        let row_capacity = 1u64 << last_row;
        if let (Some(total), Some(_var)) = (
            self.rows[last_row].totals.pop(),
            self.rows[last_row].variances.pop(),
        ) {
            self.width -= row_capacity.min(self.width);
            self.total -= total;
        }
        if self.rows[last_row].totals.is_empty() && self.rows.len() > 1 {
            self.rows.pop();
        }
        // Recompute the variance approximately from the remaining window by
        // clamping it to a non-negative value proportional to the width.
        if self.width == 0 {
            self.variance = 0.0;
        }
    }

    fn detect_cut(&mut self) -> bool {
        if self.width < 16 {
            return false;
        }
        let total_width = self.width as f64;
        let total_sum = self.total;
        let variance = self.variance().max(1e-12);
        let delta_prime = self.delta / (total_width.ln().max(1.0));

        // Walk from the oldest bucket to the newest, maintaining the running
        // sum/width of the "old" sub-window W0.
        let mut w0_width = 0.0;
        let mut w0_sum = 0.0;
        let mut cut = false;
        'outer: for row in (0..self.rows.len()).rev() {
            let capacity = (1u64 << row) as f64;
            // Oldest buckets are at the end of each row.
            for i in (0..self.rows[row].totals.len()).rev() {
                w0_width += capacity;
                w0_sum += self.rows[row].totals[i];
                let w1_width = total_width - w0_width;
                if w1_width < 1.0 || w0_width < 1.0 {
                    continue;
                }
                let mean0 = w0_sum / w0_width;
                let mean1 = (total_sum - w0_sum) / w1_width;
                let m_recip = 1.0 / w0_width + 1.0 / w1_width;
                let eps = (2.0 * m_recip * variance * (2.0 / delta_prime).ln()).sqrt()
                    + 2.0 / 3.0 * m_recip * (2.0 / delta_prime).ln();
                if (mean0 - mean1).abs() > eps {
                    cut = true;
                    break 'outer;
                }
            }
        }
        cut
    }
}

impl DriftDetector for Adwin {
    fn update(&mut self, value: f64) -> bool {
        self.insert(value);
        self.since_last_drift += 1;
        self.drift = false;
        if self.since_last_drift.is_multiple_of(self.clock) {
            // Repeatedly drop old buckets while a significant cut exists.
            let mut any_cut = false;
            while self.detect_cut() {
                any_cut = true;
                self.drop_oldest();
                if self.width < 16 {
                    break;
                }
            }
            if any_cut {
                self.drift = true;
                self.since_last_drift = 0;
            }
        }
        self.drift
    }

    fn drift_detected(&self) -> bool {
        self.drift
    }

    fn reset(&mut self) {
        *self = Adwin::new(self.delta);
    }
}

impl Default for Adwin {
    /// Canonical `delta = 0.002`.
    fn default() -> Self {
        Self::new(0.002)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_models::wire::{Reader, Writer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_drift_on_a_stationary_stream() {
        let mut adwin = Adwin::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut detections = 0;
        for _ in 0..5_000 {
            let v = if rng.gen::<f64>() < 0.3 { 1.0 } else { 0.0 };
            if adwin.update(v) {
                detections += 1;
            }
        }
        assert!(detections <= 2, "false positives: {detections}");
        assert!((adwin.mean() - 0.3).abs() < 0.1);
    }

    #[test]
    fn detects_an_abrupt_mean_shift() {
        let mut adwin = Adwin::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            adwin.update(if rng.gen::<f64>() < 0.1 { 1.0 } else { 0.0 });
        }
        let mut detected = false;
        for _ in 0..2_000 {
            if adwin.update(if rng.gen::<f64>() < 0.8 { 1.0 } else { 0.0 }) {
                detected = true;
                break;
            }
        }
        assert!(detected, "ADWIN missed an obvious 0.1 -> 0.8 shift");
    }

    #[test]
    fn window_shrinks_after_drift() {
        let mut adwin = Adwin::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3_000 {
            adwin.update(if rng.gen::<f64>() < 0.1 { 1.0 } else { 0.0 });
        }
        let width_before = adwin.width();
        for _ in 0..1_500 {
            adwin.update(if rng.gen::<f64>() < 0.9 { 1.0 } else { 0.0 });
        }
        assert!(
            adwin.width() < width_before + 1_500,
            "window should have dropped old data: before={width_before}, after={}",
            adwin.width()
        );
    }

    #[test]
    fn mean_tracks_recent_data_after_drift() {
        let mut adwin = Adwin::default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3_000 {
            adwin.update(if rng.gen::<f64>() < 0.2 { 1.0 } else { 0.0 });
        }
        for _ in 0..3_000 {
            adwin.update(if rng.gen::<f64>() < 0.7 { 1.0 } else { 0.0 });
        }
        assert!(
            adwin.mean() > 0.5,
            "mean {} should track the new level",
            adwin.mean()
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut adwin = Adwin::default();
        for i in 0..100 {
            adwin.update((i % 2) as f64);
        }
        adwin.reset();
        assert_eq!(adwin.width(), 0);
        assert_eq!(adwin.mean(), 0.0);
        assert!(!adwin.drift_detected());
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn invalid_delta_panics() {
        let _ = Adwin::new(0.0);
    }

    #[test]
    fn width_grows_without_drift() {
        let mut adwin = Adwin::default();
        for _ in 0..1_000 {
            adwin.update(0.5);
        }
        assert_eq!(adwin.width(), 1_000);
    }

    #[test]
    fn encode_decode_round_trips_and_continues_identically() {
        let mut original = Adwin::default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2_500 {
            original.update(if rng.gen::<f64>() < 0.25 { 1.0 } else { 0.0 });
        }
        let mut w = Writer::new();
        original.encode(&mut w);
        let mut r = Reader::new(w.as_bytes());
        let mut restored = Adwin::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.width(), original.width());
        assert_eq!(restored.mean().to_bits(), original.mean().to_bits());
        // The restored detector must behave identically on the rest of the
        // stream, drift detections included.
        for _ in 0..2_500 {
            let v = if rng.gen::<f64>() < 0.75 { 1.0 } else { 0.0 };
            assert_eq!(original.update(v), restored.update(v));
        }
        assert_eq!(restored.width(), original.width());
    }

    #[test]
    fn decode_rejects_forged_state() {
        let mut w = Writer::new();
        Adwin::default().encode(&mut w);
        let bytes = w.as_bytes().to_vec();
        // Truncation is a typed error.
        assert!(Adwin::decode(&mut Reader::new(&bytes[..bytes.len() - 3])).is_err());
        // A forged delta outside (0, 1) is rejected.
        let mut forged = bytes.clone();
        forged[..8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(Adwin::decode(&mut Reader::new(&forged)).is_err());
    }

    #[test]
    fn gradual_drift_is_eventually_detected() {
        let mut adwin = Adwin::default();
        let mut rng = StdRng::seed_from_u64(8);
        let mut detected = false;
        for t in 0..20_000 {
            let p = 0.1 + 0.6 * (t as f64 / 20_000.0);
            if adwin.update(if rng.gen::<f64>() < p { 1.0 } else { 0.0 }) {
                detected = true;
            }
        }
        assert!(detected, "gradual drift went unnoticed");
    }
}
