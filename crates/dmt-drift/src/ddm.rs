//! DDM — Drift Detection Method (Gama et al., 2004).
//!
//! Monitors a Bernoulli error stream. With `p_t` the running error rate and
//! `s_t = sqrt(p_t (1 - p_t) / t)`, DDM records the minimum of `p + s` and
//! signals a *warning* when `p_t + s_t ≥ p_min + 2 s_min` and a *drift* when
//! `p_t + s_t ≥ p_min + 3 s_min`. Provided for the extension experiments
//! (e.g. alternative FIMT-DD adaptation strategies).

use crate::DriftDetector;

/// Current state of the DDM detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdmState {
    /// No change suspected.
    Stable,
    /// Error rate has increased past the warning threshold.
    Warning,
    /// Error rate has increased past the drift threshold.
    Drift,
}

/// The DDM drift detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    min_instances: u64,
    warning_level: f64,
    drift_level: f64,
    count: u64,
    error_rate: f64,
    p_min: f64,
    s_min: f64,
    state: DdmState,
}

impl Ddm {
    /// Create a DDM detector. Canonical defaults: `min_instances = 30`,
    /// `warning_level = 2.0`, `drift_level = 3.0`.
    pub fn new(min_instances: u64, warning_level: f64, drift_level: f64) -> Self {
        assert!(
            drift_level > warning_level && warning_level > 0.0,
            "levels must satisfy 0 < warning < drift"
        );
        Self {
            min_instances,
            warning_level,
            drift_level,
            count: 0,
            error_rate: 0.0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            state: DdmState::Stable,
        }
    }

    /// Current detector state.
    pub fn state(&self) -> DdmState {
        self.state
    }

    /// Running error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }
}

impl Default for Ddm {
    fn default() -> Self {
        Self::new(30, 2.0, 3.0)
    }
}

impl DriftDetector for Ddm {
    fn update(&mut self, value: f64) -> bool {
        // `value` is interpreted as an error indicator in [0, 1].
        let error = value.clamp(0.0, 1.0);
        self.count += 1;
        self.error_rate += (error - self.error_rate) / self.count as f64;
        if self.count < self.min_instances {
            return false;
        }
        let p = self.error_rate;
        let s = (p * (1.0 - p) / self.count as f64).sqrt();
        if p + s < self.p_min + self.s_min {
            self.p_min = p;
            self.s_min = s;
        }
        self.state = if p + s >= self.p_min + self.drift_level * self.s_min {
            DdmState::Drift
        } else if p + s >= self.p_min + self.warning_level * self.s_min {
            DdmState::Warning
        } else {
            DdmState::Stable
        };
        self.state == DdmState::Drift
    }

    fn drift_detected(&self) -> bool {
        self.state == DdmState::Drift
    }

    fn reset(&mut self) {
        let (m, w, d) = (self.min_instances, self.warning_level, self.drift_level);
        *self = Ddm::new(m, w, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stable_error_rate_stays_stable() {
        let mut ddm = Ddm::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            ddm.update(if rng.gen::<f64>() < 0.1 { 1.0 } else { 0.0 });
        }
        assert_ne!(ddm.state(), DdmState::Drift);
        assert!((ddm.error_rate() - 0.1).abs() < 0.03);
    }

    #[test]
    fn error_increase_triggers_warning_then_drift() {
        let mut ddm = Ddm::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            ddm.update(if rng.gen::<f64>() < 0.05 { 1.0 } else { 0.0 });
        }
        let mut saw_warning = false;
        let mut saw_drift = false;
        for _ in 0..3_000 {
            ddm.update(if rng.gen::<f64>() < 0.6 { 1.0 } else { 0.0 });
            match ddm.state() {
                DdmState::Warning => saw_warning = true,
                DdmState::Drift => {
                    saw_drift = true;
                    break;
                }
                DdmState::Stable => {}
            }
        }
        assert!(saw_drift, "DDM missed a 0.05 -> 0.6 error jump");
        // Warning usually precedes drift, but at minimum drift must fire.
        let _ = saw_warning;
    }

    #[test]
    fn no_detection_before_min_instances() {
        let mut ddm = Ddm::new(50, 2.0, 3.0);
        for _ in 0..49 {
            assert!(!ddm.update(1.0));
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ddm = Ddm::default();
        for _ in 0..100 {
            ddm.update(1.0);
        }
        ddm.reset();
        assert_eq!(ddm.state(), DdmState::Stable);
        assert_eq!(ddm.error_rate(), 0.0);
    }

    #[test]
    fn improving_error_rate_never_drifts() {
        let mut ddm = Ddm::default();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..10_000 {
            let p = 0.5 - 0.4 * (t as f64 / 10_000.0);
            ddm.update(if rng.gen::<f64>() < p { 1.0 } else { 0.0 });
        }
        assert_ne!(ddm.state(), DdmState::Drift);
    }

    #[test]
    #[should_panic(expected = "0 < warning < drift")]
    fn invalid_levels_panic() {
        let _ = Ddm::new(30, 3.0, 2.0);
    }

    #[test]
    fn values_are_clamped_to_unit_interval() {
        let mut ddm = Ddm::default();
        for _ in 0..100 {
            ddm.update(5.0);
        }
        assert!(ddm.error_rate() <= 1.0);
    }
}
