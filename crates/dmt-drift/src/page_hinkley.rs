//! Page-Hinkley test (Page, 1954; Mouss et al., 2004).
//!
//! FIMT-DD uses the Page-Hinkley (PH) test on the absolute leaf residuals to
//! decide when to prune a branch after concept drift (Ikonomovska et al.,
//! 2011, and §VI-C of the DMT paper). The test maintains a cumulative
//! deviation of the observations from their running mean and signals change
//! when the deviation exceeds a threshold `lambda`.

use crate::DriftDetector;

/// The Page-Hinkley change detector (detects increases of the monitored
/// statistic, e.g. the error).
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Minimum number of observations before alarms are raised.
    min_instances: u64,
    /// Tolerance parameter `delta` subtracted from each deviation.
    delta: f64,
    /// Detection threshold `lambda`.
    lambda: f64,
    /// Forgetting factor applied to the running mean (1.0 = plain mean).
    alpha: f64,
    count: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
    drift: bool,
}

impl PageHinkley {
    /// Create a Page-Hinkley test.
    ///
    /// Typical streaming defaults: `min_instances = 30`, `delta = 0.005`,
    /// `lambda = 50`, `alpha = 0.9999`.
    pub fn new(min_instances: u64, delta: f64, lambda: f64, alpha: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self {
            min_instances,
            delta,
            lambda,
            alpha,
            count: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: f64::INFINITY,
            drift: false,
        }
    }

    /// The FIMT-DD configuration used in the paper's experiments
    /// (threshold 0.01 on the significance; PH parameters follow the
    /// Ikonomovska et al. reference implementation).
    pub fn fimtdd_default() -> Self {
        Self::new(30, 0.005, 50.0, 0.9999)
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current cumulative deviation statistic.
    pub fn statistic(&self) -> f64 {
        self.cumulative - self.minimum
    }
}

impl Default for PageHinkley {
    fn default() -> Self {
        Self::new(30, 0.005, 50.0, 0.9999)
    }
}

impl DriftDetector for PageHinkley {
    fn update(&mut self, value: f64) -> bool {
        self.count += 1;
        // Incremental running mean.
        self.mean += (value - self.mean) / self.count as f64;
        // Cumulative deviation with fading and tolerance delta.
        self.cumulative = self.cumulative * self.alpha + (value - self.mean - self.delta);
        if self.cumulative < self.minimum {
            self.minimum = self.cumulative;
        }
        self.drift =
            self.count >= self.min_instances && (self.cumulative - self.minimum) > self.lambda;
        self.drift
    }

    fn drift_detected(&self) -> bool {
        self.drift
    }

    fn reset(&mut self) {
        let (m, d, l, a) = (self.min_instances, self.delta, self.lambda, self.alpha);
        *self = PageHinkley::new(m, d, l, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stable_signal_raises_no_alarm() {
        let mut ph = PageHinkley::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(!ph.update(rng.gen_range(0.0..0.2)));
        }
    }

    #[test]
    fn level_shift_is_detected() {
        let mut ph = PageHinkley::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            ph.update(rng.gen_range(0.0..0.2));
        }
        let mut detected = false;
        for _ in 0..2_000 {
            if ph.update(rng.gen_range(0.5..1.0)) {
                detected = true;
                break;
            }
        }
        assert!(detected, "PH missed a large level shift");
    }

    #[test]
    fn no_alarm_before_min_instances() {
        let mut ph = PageHinkley::new(100, 0.005, 1.0, 1.0);
        for _ in 0..99 {
            assert!(!ph.update(10.0));
        }
    }

    #[test]
    fn reset_clears_the_statistic() {
        let mut ph = PageHinkley::default();
        for _ in 0..500 {
            ph.update(1.0);
        }
        ph.reset();
        assert_eq!(ph.count(), 0);
        assert!(ph.statistic() <= 0.0);
        assert!(!ph.drift_detected());
    }

    #[test]
    fn statistic_grows_with_positive_deviations() {
        let mut ph = PageHinkley::new(1, 0.0, 1e9, 1.0);
        for _ in 0..100 {
            ph.update(0.0);
        }
        let before = ph.statistic();
        for _ in 0..100 {
            ph.update(5.0);
        }
        assert!(ph.statistic() > before);
    }

    #[test]
    fn decreasing_signal_does_not_alarm() {
        // PH (this one-sided variant) watches for increases only.
        let mut ph = PageHinkley::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            ph.update(rng.gen_range(0.8..1.0));
        }
        let mut alarms = 0;
        for _ in 0..2_000 {
            if ph.update(rng.gen_range(0.0..0.2)) {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn non_positive_lambda_panics() {
        let _ = PageHinkley::new(30, 0.005, 0.0, 1.0);
    }

    #[test]
    fn fimtdd_default_parameters() {
        let ph = PageHinkley::fimtdd_default();
        assert_eq!(ph.min_instances, 30);
        assert!((ph.lambda - 50.0).abs() < 1e-12);
    }
}
