//! # dmt-drift
//!
//! Concept-drift detectors used by the baseline classifiers:
//!
//! * [`adwin`] — ADWIN (Bifet & Gavaldà, 2007), the adaptive windowing
//!   detector used by the Hoeffding Adaptive Tree (HT-Ada), the Adaptive
//!   Random Forest and Leveraging Bagging.
//! * [`page_hinkley`] — the Page-Hinkley test used by FIMT-DD to prune
//!   branches after concept drift.
//! * [`ddm`] — the Drift Detection Method (Gama et al., 2004), provided for
//!   the extension experiments.
//!
//! The Dynamic Model Tree itself deliberately uses **none** of these — drift
//! adaptation falls out of its loss-based gain functions (§IV-D of the
//! paper) — but the baselines require them.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adwin;
pub mod ddm;
pub mod page_hinkley;

pub use adwin::Adwin;
pub use ddm::{Ddm, DdmState};
pub use page_hinkley::PageHinkley;

/// Common interface of the drift detectors: feed scalar observations (usually
/// an error indicator or a residual) and ask whether change was detected.
pub trait DriftDetector: Send {
    /// Add a new observation. Returns `true` when drift is detected at this
    /// step.
    fn update(&mut self, value: f64) -> bool;

    /// Whether the detector is currently signalling drift.
    fn drift_detected(&self) -> bool;

    /// Reset the detector to its initial state (typically called after the
    /// model has adapted to the detected change).
    fn reset(&mut self);
}
