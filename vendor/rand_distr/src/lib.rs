//! Minimal, API-compatible shim for the subset of the [`rand_distr`] crate
//! this workspace uses: the [`Distribution`] trait plus the [`Normal`] and
//! [`Poisson`] distributions over `f64`.
//!
//! [`rand_distr`]: https://crates.io/crates/rand_distr

#![deny(unsafe_code)]

use rand::RngCore;

/// Types that can draw samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution `N(mean, std_dev²)` sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution; fails for negative or non-finite σ.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 is pushed away from exactly 0 so ln stays finite.
        let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.next_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * radius * angle.cos()
    }
}

/// Error constructing a [`Poisson`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoissonError;

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be finite and positive")
    }
}

impl std::error::Error for PoissonError {}

/// Poisson distribution with rate `lambda`, sampled with Knuth's product
/// method for small rates and a clamped Gaussian approximation for large ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution; fails for non-positive or non-finite λ.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(PoissonError);
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: count multiplications until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product = rng.next_f64();
            let mut count = 0u64;
            while product > limit {
                product *= rng.next_f64();
                count += 1;
            }
            count as f64
        } else {
            let normal = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid");
            normal.sample(rng).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_negative_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn normal_moments_are_close() {
        let normal = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(6.0).is_ok());
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let poisson = Poisson::new(6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| poisson.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 6.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_gaussian_branch() {
        let poisson = Poisson::new(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| poisson.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        for _ in 0..1_000 {
            assert!(poisson.sample(&mut rng) >= 0.0);
        }
    }
}
