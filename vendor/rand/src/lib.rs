//! Minimal, API-compatible shim for the subset of the [`rand`] crate this
//! workspace uses.
//!
//! The build environment has no access to a crates registry, so instead of the
//! real `rand` we vendor this small deterministic implementation. It covers:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! The streams produced differ from upstream `rand` (different algorithm and
//! seeding), but every consumer in this workspace only relies on determinism
//! per seed, not on specific values.
//!
//! [`rand`]: https://crates.io/crates/rand

#![deny(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the shim analogue
/// of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (the shim analogue of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo sampling: the bias is < 2^-64 per draw for the small
                // spans used in this workspace.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Random generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (`f64` in `[0, 1)`, full range
    /// for integers, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    #[inline]
    fn gen_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types (only `StdRng` is provided).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64, mirroring the role of
    /// `rand::rngs::StdRng` (seedable, high-quality, not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing: a generator
        /// rebuilt via [`StdRng::from_state`] continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from saved [`StdRng::state`] words.
        ///
        /// The all-zero state is the one fixed point of xoshiro256++ (it only
        /// ever emits zeros) and is unreachable from any seeding path, so it
        /// is rejected by restoring callers; here it is mapped to the
        /// `seed_from_u64(0)` stream to keep the constructor total.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                Self::seed_from_u64(0)
            } else {
                Self { s }
            }
        }
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (only `shuffle` is provided).
pub mod seq {
    use super::RngCore;

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn f64_lies_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = rng.gen_range(-0.1..0.1);
            assert!((-0.1..0.1).contains(&f));
            let i: usize = rng.gen_range(0..3);
            assert!(i < 3);
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut values: Vec<u32> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(values, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
