//! Minimal, API-compatible shim for the subset of the [`proptest`] crate this
//! workspace uses.
//!
//! It provides the [`strategy::Strategy`] trait (ranges, tuples, `collection::vec`,
//! `prop_map`), the [`proptest!`] macro and the `prop_assert*` macros. Instead
//! of proptest's guided shrinking, failing inputs are simply reported via the
//! panic message of the underlying assertion together with the case number,
//! which is reproducible because the case RNG is seeded deterministically.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![deny(unsafe_code)]

/// Strategies: how to generate random values of a given type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with a mapping function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible element counts for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose elements are drawn from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for many random instantiations of
/// the patterns.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($config) $($rest)* }
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Deterministic per-test seed: derived from the test name so that
            // properties do not share one value stream.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            for case in 0..config.cases {
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    seed.wrapping_add(case as u64),
                );
                let ($($pat,)*) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut rng),
                )*);
                let run = || { $body };
                run();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size((values, flag) in (collection::vec(0.0f64..1.0, 2..5), 0usize..2)) {
            prop_assert!(values.len() >= 2 && values.len() < 5);
            prop_assert!(flag < 2);
        }

        #[test]
        fn prop_map_applies_function(doubled in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0i32..5) {
            prop_assert!(x >= 0);
        }
    }
}
