//! Minimal, API-compatible shim for the subset of the [`criterion`] crate
//! this workspace uses.
//!
//! Benchmarks written against the upstream criterion API (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Bencher::iter`) run unchanged via `cargo bench`. Instead of criterion's
//! statistical machinery this shim measures a fixed wall-clock window per
//! benchmark and reports the mean time per iteration on stdout:
//!
//! ```text
//! tree_test_then_train_100_instances/DMT (ours)
//!                         time:   412.3 µs/iter   (2426 iters)
//! ```
//!
//! The measurement window can be tuned with the `CRITERION_SHIM_SECONDS`
//! environment variable (default 1 second, accepts fractional values).
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every function registered with
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let seconds = std::env::var("CRITERION_SHIM_SECONDS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .unwrap_or(1.0);
        Self {
            measure: Duration::from_secs_f64(seconds),
        }
    }
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.measure, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group_name/bench_id` in the output).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.criterion.measure,
            &mut f,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (provided for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    measure: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Call `routine` repeatedly for the measurement window, timing every
    /// call. The routine's output is passed through [`black_box`] so the
    /// optimiser cannot discard the computation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few untimed calls to populate caches and branch
        // predictors, mirroring criterion's warm-up phase.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, measure: Duration, f: &mut F) {
    let mut bencher = Bencher {
        measure,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{id:<55} (no timed iterations)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!(
        "{id:<55} time: {:>12}/iter   ({} iters)",
        format_seconds(per_iter),
        bencher.iterations
    );
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        fast_criterion().bench_function("counts_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = fast_criterion();
        let mut group = criterion.benchmark_group("group");
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_function(BenchmarkId::from_parameter("param"), |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
    }

    #[test]
    fn format_seconds_picks_sensible_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
